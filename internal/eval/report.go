package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"clap/internal/attacks"
	"clap/internal/features"
	"clap/internal/flow"
	"clap/internal/tcpstate"
)

// The renderers below regenerate the paper's tables and figures as text.
// Figures become per-strategy series (one line per bar); DESIGN.md §5
// indexes which benchmark regenerates which table or figure.

// Table1 renders the detection breakdown per strategy corpus (paper
// Table 1).
func Table1(rs []StrategyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: mean detection performance per strategy corpus\n")
	fmt.Fprintf(&b, "%-28s %-10s %-8s %-10s %-8s %-10s %-8s\n",
		"Corpus", "CLAP-AUC", "CLAP-EER", "B1-AUC", "B1-EER", "B2-AUC", "B2-EER")
	row := func(label string, a Aggregate) {
		fmt.Fprintf(&b, "%-28s %-10.3f %-8.3f %-10.3f %-8.3f %-10.3f %-8.3f\n",
			label, a.AUC, a.EER, a.AUCB1, a.EERB1, a.AUCKit, a.EERKit)
	}
	row("SymTCP [23] (30)", Summarise(FilterSource(rs, attacks.SourceSymTCP)))
	row("lib-erate [10] (23)", Summarise(FilterSource(rs, attacks.SourceLiberate)))
	row("Geneva [4] (20)", Summarise(FilterSource(rs, attacks.SourceGeneva)))
	row("Overall (73)", Summarise(rs))
	return b.String()
}

// Table2 renders the inter- vs intra-packet violation breakdown using the
// empirical TH_inter rule (paper Table 2).
func Table2(rs []StrategyResult) string {
	inter, intra := Categorize(rs)
	ia, ra := Summarise(inter), Summarise(intra)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: detection by primary context violation (TH_inter=%.2f)\n", THInter)
	fmt.Fprintf(&b, "%-34s %-10s %-10s %-10s %-10s\n", "Category", "CLAP-AUC", "B1-AUC", "CLAP-EER", "B1-EER")
	fmt.Fprintf(&b, "%-34s %-10.3f %-10.3f %-10.3f %-10.3f\n",
		fmt.Sprintf("Inter-packet violation (%d)", ia.N), ia.AUC, ia.AUCB1, ia.EER, ia.EERB1)
	fmt.Fprintf(&b, "%-34s %-10.3f %-10.3f %-10.3f %-10.3f\n",
		fmt.Sprintf("Intra-packet violation (%d)", ra.N), ra.AUC, ra.AUCB1, ra.EER, ra.EERB1)
	return b.String()
}

// Throughput is a Table 3 measurement.
type Throughput struct {
	Packets, Connections int
	Elapsed              time.Duration
}

// PacketsPerSecond returns the packet-processing rate.
func (t Throughput) PacketsPerSecond() float64 {
	return float64(t.Packets) / t.Elapsed.Seconds()
}

// ConnectionsPerSecond returns the connection-processing rate.
func (t Throughput) ConnectionsPerSecond() float64 {
	return float64(t.Connections) / t.Elapsed.Seconds()
}

// MeasureThroughputCLAP times CLAP's full inference pipeline over conns on
// a single worker — the paper's single-core Table 3 measurement.
func (s *Suite) MeasureThroughputCLAP(conns []*flow.Connection) Throughput {
	th := Throughput{Connections: len(conns)}
	start := time.Now()
	for _, c := range conns {
		_ = s.CLAP.Score(c)
		th.Packets += c.Len()
	}
	th.Elapsed = time.Since(start)
	return th
}

// MeasureThroughputEngine times the same pipeline through the suite's
// parallel engine — the deployment-mode counterpart of Table 3.
func (s *Suite) MeasureThroughputEngine(conns []*flow.Connection) Throughput {
	th := Throughput{Connections: len(conns)}
	start := time.Now()
	_ = s.engineOrDefault().ScoreAll(s.CLAP, conns)
	th.Elapsed = time.Since(start)
	for _, c := range conns {
		th.Packets += c.Len()
	}
	return th
}

// MeasureThroughputKitsune times Kitsune's execute phase over conns.
func (s *Suite) MeasureThroughputKitsune(conns []*flow.Connection) Throughput {
	th := Throughput{Connections: len(conns)}
	start := time.Now()
	for _, c := range conns {
		_ = s.Kit.ScoreConnection(c)
		th.Packets += c.Len()
	}
	th.Elapsed = time.Since(start)
	return th
}

// Table3 renders the throughput comparison (paper Table 3). The paper's
// measurement is single-core; an optional engine measurement adds an
// all-cores deployment-mode row in the CLAP column.
func Table3(clap, kit Throughput, eng ...Throughput) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: model processing throughput\n")
	fmt.Fprintf(&b, "%-28s %-14s %-14s\n", "Metric", "CLAP", "Kitsune [17]")
	gain := clap.PacketsPerSecond()/kit.PacketsPerSecond()*100 - 100
	fmt.Fprintf(&b, "%-28s %-14.1f %-14.1f (CLAP %+.1f%%)\n", "Packets/second (1 core)",
		clap.PacketsPerSecond(), kit.PacketsPerSecond(), gain)
	fmt.Fprintf(&b, "%-28s %-14.1f %-14.1f\n", "Connections/second (1 core)",
		clap.ConnectionsPerSecond(), kit.ConnectionsPerSecond())
	for _, e := range eng {
		speedup := e.PacketsPerSecond() / clap.PacketsPerSecond()
		fmt.Fprintf(&b, "%-28s %-14.1f %-14s (%.2fx serial CLAP)\n",
			"Packets/second (engine)", e.PacketsPerSecond(), "-", speedup)
	}
	return b.String()
}

// Table4 renders dataset statistics (paper Table 4).
func Table4(d *Dataset) string {
	tr, te := flow.Census(d.Train), flow.Census(d.TestBenign)
	var advConns, advPkts int
	for _, cs := range d.Adv {
		for _, c := range cs {
			advConns++
			advPkts += c.Len()
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: dataset statistics (synthetic MAWI-like corpus)\n")
	fmt.Fprintf(&b, "%-42s %d\n", "# TCP/IPv4 packets (training)", tr.Packets)
	fmt.Fprintf(&b, "%-42s %d\n", "# TCP/IPv4 connections (training)", tr.Connections)
	fmt.Fprintf(&b, "%-42s %d\n", "# TCP/IPv4 packets (benign testing)", te.Packets)
	fmt.Fprintf(&b, "%-42s %d\n", "# TCP/IPv4 connections (benign testing)", te.Connections)
	fmt.Fprintf(&b, "%-42s %d\n", "# adversarial packets+carriers (testing)", advPkts)
	fmt.Fprintf(&b, "%-42s %d\n", "# adversarial connections (testing)", advConns)
	return b.String()
}

// Table5 renders the per-label RNN accuracy breakdown (paper Table 5).
func Table5(s *Suite) string {
	hits, totals := s.engineOrDefault().RNNAccuracy(s.CLAP, s.Data.TestBenign)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: per-label RNN state-prediction accuracy\n")
	fmt.Fprintf(&b, "%-26s %-10s %-10s %-10s\n", "Label", "Accuracy", "Hits", "Samples")
	var h, n int
	for cls := 0; cls < tcpstate.NumClasses; cls++ {
		if totals[cls] == 0 {
			continue
		}
		l := tcpstate.LabelFromClass(cls)
		fmt.Fprintf(&b, "%-26s %-10.4f %-10d %-10d\n",
			l.String(), float64(hits[cls])/float64(totals[cls]), hits[cls], totals[cls])
		h += hits[cls]
		n += totals[cls]
	}
	fmt.Fprintf(&b, "%-26s %-10.4f %-10d %-10d\n", "OVERALL", float64(h)/float64(n), h, n)
	return b.String()
}

// Table6 renders the live model hyper-parameters (paper Table 6).
func Table6(s *Suite) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: model hyper-parameters\n")
	c := s.Opt.CLAP
	fmt.Fprintf(&b, "RNN (GRU) in CLAP:        layers=1 input=%d hidden/gate=%d classes=%d epochs=%d\n",
		features.NumRNN, c.RNNHidden, tcpstate.NumClasses, c.RNNEpochs)
	fmt.Fprintf(&b, "Autoencoder in CLAP:      chain=%v stacking=%d epochs=%d\n",
		c.AESizes(), c.StackLength, c.AEEpochs)
	b1 := s.Opt.B1
	fmt.Fprintf(&b, "Autoencoder in Baseline1: chain=%v stacking=%d epochs=%d\n",
		b1.AESizes(), b1.StackLength, b1.AEEpochs)
	fmt.Fprintf(&b, "Baseline2 (Kitsune):      ensemble=%d total-input=%d max-AE-input=%d hidden-ratio=%.2f\n",
		s.Kit.EnsembleSize(), 100, s.Opt.Kit.MaxAEInput, s.Opt.Kit.HiddenRatio)
	return b.String()
}

// Table7 renders the feature schema (paper Table 7).
func Table7() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7: features in the context profile\n")
	for _, f := range features.Schema() {
		kind := "Numeric"
		if f.Kind == features.Binary {
			kind = "Binary"
		}
		rnn := ""
		if f.RNNInput {
			rnn = "(RNN input)"
		}
		fmt.Fprintf(&b, "#%-3d %-14s %-8s %-58s %s\n", f.Index+1, f.Group, kind, f.Name, rnn)
	}
	fmt.Fprintf(&b, "plus %d update-gate and %d reset-gate weights from the GRU\n", 32, 32)
	return b.String()
}

// Table8 renders the empirical per-context categorization (paper Table 8).
func Table8(rs []StrategyResult) string {
	inter, intra := Categorize(rs)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8: per-context categorization of the 73 strategies (TH_inter=%.2f)\n", THInter)
	section := func(label string, set []StrategyResult) {
		fmt.Fprintf(&b, "%s (%d):\n", label, len(set))
		sorted := append([]StrategyResult(nil), set...)
		SortByName(sorted)
		for _, r := range sorted {
			marker := " "
			if string(r.Strategy.Category) != strings.ToLower(label[:5])+"-packet" {
				marker = "*" // differs from the mechanistic prior
			}
			fmt.Fprintf(&b, "  %s [%-8s] %-58s ΔAUC=%+.3f\n",
				marker, r.Strategy.Source, r.Strategy.Name, r.AUC-r.AUCB1)
		}
	}
	section("Inter-packet context violation", inter)
	section("Intra-packet context violation", intra)
	fmt.Fprintf(&b, "(* = empirical category differs from the declared mechanistic prior)\n")
	return b.String()
}

// FigureDetection renders one of Figures 7-9: per-strategy detection AUC
// for a corpus, with both baselines.
func FigureDetection(num int, src attacks.Source, rs []StrategyResult) string {
	sub := FilterSource(rs, src)
	SortByName(sub)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: per-strategy detection accuracy — %s\n", num, src)
	fmt.Fprintf(&b, "%-58s %-9s %-9s %-9s %-8s\n", "Strategy", "CLAP-AUC", "B1-AUC", "B2-AUC", "CLAP-EER")
	for _, r := range sub {
		fmt.Fprintf(&b, "%-58s %-9.3f %-9.3f %-9.3f %-8.3f\n",
			r.Strategy.Name, r.AUC, r.AUCB1, r.AUCKit, r.EER)
	}
	return b.String()
}

// FigureLocalization renders one of Figures 10-12: per-strategy Top-5/3/1
// localization hit rates.
func FigureLocalization(num int, src attacks.Source, rs []StrategyResult) string {
	sub := FilterSource(rs, src)
	SortByName(sub)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: per-strategy localization accuracy — %s\n", num, src)
	fmt.Fprintf(&b, "%-58s %-7s %-7s %-7s\n", "Strategy", "Top-5", "Top-3", "Top-1")
	for _, r := range sub {
		fmt.Fprintf(&b, "%-58s %-7.3f %-7.3f %-7.3f\n", r.Strategy.Name, r.Top5, r.Top3, r.Top1)
	}
	return b.String()
}

// Figure6 renders the reconstruction-error trend across one adversarial
// connection (paper Figure 6): the error spikes at the injected packet and
// falls back to the benign level.
func Figure6(s *Suite, strategyName string) string {
	st, ok := attacks.ByName(strategyName)
	if !ok {
		return "unknown strategy: " + strategyName
	}
	rng := rand.New(rand.NewSource(strategySeed(s.Opt.Seed, st.Name)))
	var b strings.Builder
	for _, base := range s.Data.AdvBase {
		if base.Len() < 12 {
			continue
		}
		cc := base.Clone()
		if !st.Apply(cc, rng) {
			continue
		}
		sc := s.CLAP.Score(cc)
		fmt.Fprintf(&b, "Figure 6: reconstruction errors across a connection — %s\n", st.Name)
		fmt.Fprintf(&b, "adversarial packet index: %v, peak window: %d\n", cc.AdvIdx, sc.PeakWindow)
		max := 0.0
		for _, e := range sc.Errors {
			if e > max {
				max = e
			}
		}
		for i, e := range sc.Errors {
			bar := strings.Repeat("#", int(e/max*50))
			mark := ""
			for _, a := range cc.AdvIdx {
				if s.CLAP.Cfg.StackLength > 0 && i <= a && a < i+s.CLAP.Cfg.StackLength {
					mark = " <- contains adversarial packet"
				}
			}
			fmt.Fprintf(&b, "win %3d %7.4f %s%s\n", i, e, bar, mark)
		}
		return b.String()
	}
	return "no suitable connection found"
}

// FullReport renders every table and figure in order.
func FullReport(s *Suite, rs []StrategyResult) string {
	var b strings.Builder
	sections := []string{
		Table1(rs),
		Table2(rs),
		Table4(s.Data),
		Table5(s),
		Table6(s),
		Table7(),
		Table8(rs),
		FigureDetection(7, attacks.SourceSymTCP, rs),
		FigureDetection(8, attacks.SourceLiberate, rs),
		FigureDetection(9, attacks.SourceGeneva, rs),
		FigureLocalization(10, attacks.SourceSymTCP, rs),
		FigureLocalization(11, attacks.SourceLiberate, rs),
		FigureLocalization(12, attacks.SourceGeneva, rs),
		Figure6(s, "GFW: Injected RST Bad TCP-Checksum/MD5-Option"),
	}
	for _, sec := range sections {
		b.WriteString(sec)
		b.WriteString("\n")
	}
	// Table 3 last: throughput over the adversarial corpus.
	var advConns []*flow.Connection
	names := make([]string, 0, len(s.Data.Adv))
	for name := range s.Data.Adv {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		advConns = append(advConns, s.Data.Adv[name]...)
	}
	b.WriteString(Table3(s.MeasureThroughputCLAP(advConns), s.MeasureThroughputKitsune(advConns),
		s.MeasureThroughputEngine(advConns)))
	// Table 9: the tiered-deployment frontier over the same trained models.
	if f, err := s.CascadeFrontier(nil); err == nil {
		b.WriteString("\n")
		b.WriteString(TableFrontier(f))
	}
	return b.String()
}
