package eval

import (
	"math"
	"strings"
	"testing"

	"clap/internal/core"
)

func TestAggregateReductions(t *testing.T) {
	errs := []float64{0.1, 0.5, 0.2, 0.4}
	if got := aggregate(errs, AggMax, 5); got != 0.5 {
		t.Errorf("max = %g", got)
	}
	if got := aggregate(errs, AggMean, 5); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("mean = %g", got)
	}
	// Localize-and-estimate with window 3 around the peak at index 1:
	// mean(0.1, 0.5, 0.2).
	if got := aggregate(errs, AggLocalize, 3); math.Abs(got-(0.1+0.5+0.2)/3) > 1e-12 {
		t.Errorf("localize = %g", got)
	}
	if got := aggregate(nil, AggMax, 3); got != 0 {
		t.Errorf("empty aggregate = %g", got)
	}
}

func TestAblationStrategiesExist(t *testing.T) {
	s := suite(t)
	for _, name := range AblationStrategies {
		if len(s.Data.Adv[name]) == 0 {
			t.Errorf("ablation strategy %q has no adversarial corpus", name)
		}
	}
}

func TestEvaluateScoreMetricOrdering(t *testing.T) {
	s := suite(t)
	names := AblationStrategies[:4]
	loc := s.EvaluateScoreMetric(AggLocalize, names)
	max := s.EvaluateScoreMetric(AggMax, names)
	mean := s.EvaluateScoreMetric(AggMean, names)
	for label, v := range map[string]float64{"localize": loc, "max": max, "mean": mean} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("%s AUC = %g", label, v)
		}
	}
}

func TestTrainVariantAndEvaluateDetector(t *testing.T) {
	s := suite(t)
	det, err := s.TrainVariant(func(c *core.Config) {
		c.StackLength = 1
		c.AEEpochs = 2
	}, nil)
	if err != nil {
		t.Fatalf("TrainVariant: %v", err)
	}
	if det.Cfg.StackLength != 1 {
		t.Error("variant config not applied")
	}
	auc := s.EvaluateDetector(det, AblationStrategies[:2])
	if auc < 0 || auc > 1 {
		t.Errorf("variant AUC = %g", auc)
	}
	if got := s.EvaluateDetector(det, nil); got != 0 {
		t.Errorf("no-strategy evaluation = %g, want 0", got)
	}
}

func TestAblationReportFormat(t *testing.T) {
	out := AblationReport("no-stacking", 0.9, 0.8)
	if !strings.Contains(out, "no-stacking") || !strings.Contains(out, "-0.100") {
		t.Errorf("report malformed: %s", out)
	}
}
