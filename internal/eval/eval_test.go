package eval

import (
	"strings"
	"sync"
	"testing"

	"clap/internal/attacks"
)

// The tiny suite takes a few seconds to train; share it across tests.
var (
	tinyOnce  sync.Once
	tinySuite *Suite
	tinyErr   error
)

func suite(t *testing.T) *Suite {
	t.Helper()
	tinyOnce.Do(func() {
		tinySuite, tinyErr = BuildSuite(OptionsFor(ProfileTiny), nil)
	})
	if tinyErr != nil {
		t.Fatalf("BuildSuite: %v", tinyErr)
	}
	return tinySuite
}

func TestOptionsProfiles(t *testing.T) {
	for _, p := range []Profile{ProfileTiny, ProfileFast, ProfileFull} {
		o := OptionsFor(p)
		if o.TrainConns <= 0 || o.TestBenign <= 0 || o.AdvPerStrategy <= 0 {
			t.Errorf("profile %s has empty sizes: %+v", p, o)
		}
	}
	if OptionsFor("bogus").Profile != ProfileFast {
		t.Error("unknown profile should fall back to fast")
	}
	// Scales must be ordered.
	if OptionsFor(ProfileTiny).TrainConns >= OptionsFor(ProfileFast).TrainConns ||
		OptionsFor(ProfileFast).TrainConns >= OptionsFor(ProfileFull).TrainConns {
		t.Error("profiles should scale up")
	}
}

func TestDatasetCoversAllStrategies(t *testing.T) {
	s := suite(t)
	if len(s.Data.Adv) != 73 {
		t.Fatalf("adversarial corpora for %d strategies, want 73", len(s.Data.Adv))
	}
	for name, conns := range s.Data.Adv {
		if len(conns) == 0 {
			t.Errorf("strategy %q has no adversarial connections", name)
		}
		if len(conns) != len(s.Data.AdvSrc[name]) {
			t.Errorf("strategy %q: %d conns but %d sources", name, len(conns), len(s.Data.AdvSrc[name]))
		}
		for _, c := range conns {
			if !c.IsAdversarial() {
				t.Errorf("strategy %q produced an unmarked connection", name)
			}
			if c.AttackName != name {
				t.Errorf("connection labeled %q under strategy %q", c.AttackName, name)
			}
		}
	}
}

func TestDatasetDeterminism(t *testing.T) {
	o := OptionsFor(ProfileTiny)
	a := BuildDataset(o)
	b := BuildDataset(o)
	for name := range a.Adv {
		if len(a.Adv[name]) != len(b.Adv[name]) {
			t.Fatalf("strategy %q: %d vs %d connections across runs", name, len(a.Adv[name]), len(b.Adv[name]))
		}
	}
	if len(a.Train) != len(b.Train) {
		t.Fatal("training sets differ across runs")
	}
}

func TestEvaluateStrategyProducesSaneMetrics(t *testing.T) {
	s := suite(t)
	st, _ := attacks.ByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	r := s.EvaluateStrategy(st)
	if r.N == 0 {
		t.Fatal("no adversarial connections evaluated")
	}
	for name, v := range map[string]float64{
		"AUC": r.AUC, "EER": r.EER, "AUCB1": r.AUCB1, "AUCKit": r.AUCKit,
		"Top1": r.Top1, "Top3": r.Top3, "Top5": r.Top5,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %g out of [0,1]", name, v)
		}
	}
	if r.Top5 < r.Top3 || r.Top3 < r.Top1 {
		t.Errorf("localization must be monotone: top1=%.2f top3=%.2f top5=%.2f", r.Top1, r.Top3, r.Top5)
	}
	// Even the tiny config must catch the motivating example decisively.
	if r.AUC < 0.8 {
		t.Errorf("motivating-example AUC = %.3f, want >= 0.8", r.AUC)
	}
}

func TestSummariseAndFilter(t *testing.T) {
	s := suite(t)
	rs := []StrategyResult{}
	for _, name := range []string{
		"Snort: Injected RST Pure",
		"Bad TCP Checksum (Min)",
		"Injected RST / Low TTL",
	} {
		st, _ := attacks.ByName(name)
		rs = append(rs, s.EvaluateStrategy(st))
	}
	agg := Summarise(rs)
	if agg.N != 3 {
		t.Fatalf("aggregate N = %d", agg.N)
	}
	if agg.AUC < 0 || agg.AUC > 1 {
		t.Errorf("aggregate AUC = %g", agg.AUC)
	}
	if len(FilterSource(rs, attacks.SourceSymTCP)) != 1 ||
		len(FilterSource(rs, attacks.SourceLiberate)) != 1 ||
		len(FilterSource(rs, attacks.SourceGeneva)) != 1 {
		t.Error("FilterSource partition wrong")
	}
	if Summarise(nil).N != 0 {
		t.Error("empty summary should have N=0")
	}
}

func TestCategorizePartitions(t *testing.T) {
	rs := []StrategyResult{
		{AUC: 0.9, AUCB1: 0.5},  // disparity 0.4 > 0.15: inter
		{AUC: 0.9, AUCB1: 0.85}, // disparity 0.05: intra
	}
	inter, intra := Categorize(rs)
	if len(inter) != 1 || len(intra) != 1 {
		t.Fatalf("categorize split %d/%d, want 1/1", len(inter), len(intra))
	}
}

func TestReportRenderers(t *testing.T) {
	s := suite(t)
	var rs []StrategyResult
	for _, name := range []string{
		"Snort: Injected RST Pure",
		"Bad TCP Checksum (Min)",
		"Injected RST / Low TTL",
	} {
		st, _ := attacks.ByName(name)
		rs = append(rs, s.EvaluateStrategy(st))
	}
	for label, out := range map[string]string{
		"Table1":   Table1(rs),
		"Table2":   Table2(rs),
		"Table4":   Table4(s.Data),
		"Table5":   Table5(s),
		"Table6":   Table6(s),
		"Table7":   Table7(),
		"Table8":   Table8(rs),
		"Figure7":  FigureDetection(7, attacks.SourceSymTCP, rs),
		"Figure10": FigureLocalization(10, attacks.SourceSymTCP, rs),
	} {
		if len(out) < 40 {
			t.Errorf("%s renders only %d bytes", label, len(out))
		}
		if strings.Contains(out, "NaN") {
			t.Errorf("%s contains NaN:\n%s", label, out)
		}
	}
}

func TestTable7MatchesSchema(t *testing.T) {
	out := Table7()
	if !strings.Contains(out, "Checksum validity") || !strings.Contains(out, "Out-of-Range") {
		t.Error("Table 7 missing expected features")
	}
	if !strings.Contains(out, "update-gate") {
		t.Error("Table 7 should mention gate weights")
	}
}

func TestFigure6ShowsSpike(t *testing.T) {
	s := suite(t)
	out := Figure6(s, "GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	if !strings.Contains(out, "contains adversarial packet") {
		t.Errorf("Figure 6 missing adversarial marker:\n%s", out)
	}
	if Figure6(s, "nope") != "unknown strategy: nope" {
		t.Error("Figure 6 should reject unknown strategies")
	}
}

func TestThroughputMeasurement(t *testing.T) {
	s := suite(t)
	th := s.MeasureThroughputCLAP(s.Data.TestBenign[:8])
	if th.Packets == 0 || th.Elapsed <= 0 {
		t.Fatalf("empty throughput measurement: %+v", th)
	}
	if th.PacketsPerSecond() <= 0 || th.ConnectionsPerSecond() <= 0 {
		t.Error("rates must be positive")
	}
	kth := s.MeasureThroughputKitsune(s.Data.TestBenign[:8])
	if kth.Packets != th.Packets {
		t.Errorf("both detectors should see the same packets: %d vs %d", th.Packets, kth.Packets)
	}
}

func TestStrategySeedStable(t *testing.T) {
	if strategySeed(1, "a") != strategySeed(1, "a") {
		t.Error("strategySeed must be deterministic")
	}
	if strategySeed(1, "a") == strategySeed(1, "b") {
		t.Error("strategySeed should differ per name")
	}
	if strategySeed(1, "a") == strategySeed(2, "a") {
		t.Error("strategySeed should differ per base seed")
	}
}
