package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"clap/internal/attacks"
	"clap/internal/backend"
	"clap/internal/flow"
	"clap/internal/metrics"
)

// DefaultFrontierFPRs is the canonical escalation sweep: from a screen
// that escalates almost nothing, through the serving default, up to one
// that forwards half of benign traffic — the budget where the fast
// profile reaches accuracy parity (≤2% AUC loss) with pure CLAP.
var DefaultFrontierFPRs = []float64{0.01, 0.05, 0.10, 0.25, 0.50}

// FrontierPoint is one operating point of the tiered baseline1→CLAP
// cascade: the escalation budget, the stage-1 threshold realizing it,
// detection accuracy with that routing, and measured serial throughput
// on a benign-heavy corpus.
type FrontierPoint struct {
	EscalateFPR float64 // target benign escalation fraction
	Threshold   float64 // stage-1 escalation threshold realizing it

	// AUC is the mean detection AUC across every attack strategy with the
	// cascade's routing applied (paired negatives, like EvaluateStrategy).
	AUC float64

	// EscalatedFraction is the realized escalation rate over the
	// benign-heavy throughput corpus.
	EscalatedFraction float64

	Throughput Throughput
}

// Frontier is the full accuracy/throughput sweep plus the pure-CLAP
// reference the cascade is traded against.
type Frontier struct {
	Points []FrontierPoint

	// PureAUC and Pure are the escalate-everything reference: stage 2
	// scores every connection.
	PureAUC float64
	Pure    Throughput

	// Benign and Attack size the throughput corpus.
	Benign, Attack int
}

// frontierCorpus assembles the benign-heavy throughput corpus: the full
// benign test split plus ~5% adversarial connections drawn evenly from
// the strategy corpora in name order (deterministic).
func (s *Suite) frontierCorpus() (conns []*flow.Connection, benign, attack int) {
	conns = append(conns, s.Data.TestBenign...)
	benign = len(conns)
	want := benign / 19 // ≈5% of the final mix
	if want == 0 {
		want = 1
	}
	names := make([]string, 0, len(s.Data.Adv))
	for name := range s.Data.Adv {
		names = append(names, name)
	}
	sort.Strings(names)
	for i := 0; attack < want; i++ {
		added := false
		for _, name := range names {
			if cs := s.Data.Adv[name]; i < len(cs) && attack < want {
				conns = append(conns, cs[i])
				attack++
				added = true
			}
		}
		if !added {
			break
		}
	}
	return conns, benign, attack
}

// CascadeFrontier sweeps the escalation budget of a baseline1→CLAP
// cascade and reports the accuracy/throughput frontier of the tiered
// deployment. Detection AUC per point composes the suite's cached stage
// scores through the routing rule — order-equivalent to scoring through
// backend.Cascade (escalated scores bit-identical to pure CLAP, pinned
// by test; screened margins agree up to float rounding of the shift) —
// and throughput per point is a measured serial pass of the real
// cascade over the benign-heavy corpus. A nil fprs sweeps
// DefaultFrontierFPRs.
func (s *Suite) CascadeFrontier(fprs []float64) (*Frontier, error) {
	s1, ok1 := s.Backends[backend.TagBaseline1]
	s2, ok2 := s.Backends[backend.TagCLAP]
	if !ok1 || !ok2 {
		return nil, errors.New("eval: frontier needs the baseline1 and clap backends in the suite")
	}
	if len(fprs) == 0 {
		fprs = DefaultFrontierFPRs
	}
	eng := s.engineOrDefault()

	// The escalation threshold calibrates on the benign test split's
	// stage-1 scores — held out from training, like a deployment would.
	benignS1 := eng.ScoreBackend(s1, s.Data.TestBenign)

	// Per-strategy stage scores, computed once and composed per point.
	type stratScores struct {
		name           string
		advS1, advS2   []float64
		pairS1, pairS2 []float64
	}
	var strat []stratScores
	for _, st := range attacks.All() {
		conns := s.Data.Adv[st.Name]
		srcs := s.Data.AdvSrc[st.Name]
		if len(conns) == 0 {
			continue
		}
		ss := stratScores{
			name:  st.Name,
			advS1: eng.ScoreBackend(s1, conns),
			advS2: eng.ScoreBackend(s2, conns),
		}
		for _, bi := range srcs {
			ss.pairS1 = append(ss.pairS1, s.Base[backend.TagBaseline1][bi])
			ss.pairS2 = append(ss.pairS2, s.Base[backend.TagCLAP][bi])
		}
		strat = append(strat, ss)
	}
	if len(strat) == 0 {
		return nil, errors.New("eval: frontier needs a non-empty adversarial corpus")
	}

	// route applies the cascade's decision rule to cached stage scores:
	// below the escalation threshold the screen's verdict stands as its
	// negative margin below the threshold (mirroring Cascade.WindowErrors'
	// shift, so every screened connection ranks under every escalated
	// one), otherwise the expensive stage's score — bit-identical to pure
	// CLAP — is the verdict.
	route := func(th float64, sc1, sc2 []float64) []float64 {
		out := make([]float64, len(sc1))
		for i := range sc1 {
			if sc1[i] < th {
				out[i] = sc1[i] - th
			} else {
				out[i] = sc2[i]
			}
		}
		return out
	}
	meanAUC := func(th float64) float64 {
		var sum float64
		for _, ss := range strat {
			sum += metrics.AUC(route(th, ss.pairS1, ss.pairS2), route(th, ss.advS1, ss.advS2))
		}
		return sum / float64(len(strat))
	}

	corpus, nBenign, nAttack := s.frontierCorpus()
	serial := func(b backend.Backend) Throughput {
		th := Throughput{Connections: len(corpus)}
		start := time.Now()
		for _, c := range corpus {
			_ = b.ScoreConn(c)
			th.Packets += c.Len()
		}
		th.Elapsed = time.Since(start)
		return th
	}

	f := &Frontier{
		PureAUC: meanAUC(math.Inf(-1)), // escalate everything: pure stage 2
		Pure:    serial(s2),
		Benign:  nBenign,
		Attack:  nAttack,
	}
	cascade, err := backend.NewCascade(s1, s2, fprs[0])
	if err != nil {
		return nil, err
	}
	for _, fpr := range fprs {
		th := metrics.ThresholdAtFPR(benignS1, fpr)
		if err := cascade.SetEscalateFPR(fpr); err != nil {
			return nil, err
		}
		if err := cascade.SetEscalation(th); err != nil {
			return nil, err
		}
		cascade.ResetEscalationCounts()
		pt := FrontierPoint{
			EscalateFPR: fpr,
			Threshold:   th,
			AUC:         meanAUC(th),
			Throughput:  serial(cascade),
		}
		if evaluated, escalated := cascade.EscalationCounts(); evaluated > 0 {
			pt.EscalatedFraction = float64(escalated) / float64(evaluated)
		}
		f.Points = append(f.Points, pt)
	}
	return f, nil
}

// TableFrontier renders the cascade accuracy/throughput frontier (the
// tiered-deployment extension of Table 3).
func TableFrontier(f *Frontier) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 9: cascade escalation frontier — baseline1 screen, CLAP verdicts (%d benign + %d attack connections)\n",
		f.Benign, f.Attack)
	fmt.Fprintf(&b, "%-12s %-12s %-11s %-8s %-8s %-14s %-10s\n",
		"Esc-FPR", "Threshold", "Escalated", "AUC", "ΔAUC", "Pkts/s", "Speedup")
	for _, p := range f.Points {
		speedup := p.Throughput.PacketsPerSecond() / f.Pure.PacketsPerSecond()
		fmt.Fprintf(&b, "%-12.3f %-12.6f %-11.3f %-8.3f %-+8.3f %-14.1f %-10.2fx\n",
			p.EscalateFPR, p.Threshold, p.EscalatedFraction, p.AUC, p.AUC-f.PureAUC,
			p.Throughput.PacketsPerSecond(), speedup)
	}
	fmt.Fprintf(&b, "%-12s %-12s %-11.3f %-8.3f %-8s %-14.1f %-10s\n",
		"pure clap", "-", 1.0, f.PureAUC, "-", f.Pure.PacketsPerSecond(), "1.00x")
	return b.String()
}
