package eval

import (
	"fmt"
	"strings"

	"clap/internal/core"
	"clap/internal/flow"
	"clap/internal/metrics"
)

// Ablations quantify the design choices DESIGN.md calls out: gate-weight
// fusion, profile stacking, amplification features, and the
// localize-and-estimate score metric (§3.3). Each ablation trains a variant
// detector under the same data and budget and reports mean AUC over a
// representative strategy mix.

// AblationStrategies is the mixed inter/intra subset ablations evaluate on
// (full-corpus ablations would multiply training time without changing the
// ordering).
var AblationStrategies = []string{
	// Inter-packet violations.
	"GFW: Injected RST Bad TCP-Checksum/MD5-Option",
	"Snort: Injected RST Pure",
	"Zeek: Injected FIN Pure",
	"Snort: SYN Multiple (SYN)",
	"RST w/ Low TTL #1 (Min)",
	"Injected RST-ACK / Low TTL",
	// Intra-packet violations.
	"Bad TCP Checksum (Min)",
	"Invalid IP Version (Min)",
	"Invalid Data-Offset (Max)",
	"Snort: Data Packet (ACK) w/ Urgent Pointer",
	"Invalid Flags #2 / Bad TCP MD5-Option",
	"Bad Payload Length / Bad TCP Checksum",
}

// TrainVariant trains a detector whose config is derived from the suite's
// CLAP config by mutate.
func (s *Suite) TrainVariant(mutate func(*core.Config), logf core.Logf) (*core.Detector, error) {
	cfg := s.Opt.CLAP
	mutate(&cfg)
	return core.Train(s.Data.Train, cfg, logf)
}

// neededBases collects, in first-use order, the unique carrier-pool indices
// the named strategies reference — the set of base connections whose scores
// a paired evaluation needs.
func (s *Suite) neededBases(names []string) []int {
	seen := map[int]bool{}
	var need []int
	for _, name := range names {
		for _, bi := range s.Data.AdvSrc[name] {
			if !seen[bi] {
				seen[bi] = true
				need = append(need, bi)
			}
		}
	}
	return need
}

// baseScoreMap scores the carrier-pool connections the named strategies
// reference, through the engine, returning carrier index -> score.
func (s *Suite) baseScoreMap(names []string, score func(*flow.Connection) float64) map[int]float64 {
	need := s.neededBases(names)
	baseConns := make([]*flow.Connection, len(need))
	for i, bi := range need {
		baseConns[i] = s.Data.AdvBase[bi]
	}
	baseVals := s.engineOrDefault().MapFloat(baseConns, score)
	baseScores := make(map[int]float64, len(need))
	for i, bi := range need {
		baseScores[bi] = baseVals[i]
	}
	return baseScores
}

// EvaluateDetector computes the mean paired AUC of an arbitrary detector
// over the named strategies. Carrier and adversarial corpora are scored
// through the parallel engine; results are independent of the worker count.
func (s *Suite) EvaluateDetector(det *core.Detector, names []string) float64 {
	eng := s.engineOrDefault()
	baseScores := s.baseScoreMap(names, func(c *flow.Connection) float64 {
		return det.Score(c).Adversarial
	})

	var sum float64
	var n int
	for _, name := range names {
		conns := s.Data.Adv[name]
		srcs := s.Data.AdvSrc[name]
		if len(conns) == 0 {
			continue
		}
		adv := eng.AdversarialScores(det, conns)
		ben := make([]float64, len(conns))
		for i := range conns {
			ben[i] = baseScores[srcs[i]]
		}
		sum += metrics.AUC(ben, adv)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ScoreAggregation is an alternative stage-(d) summarisation for the
// score-metric ablation.
type ScoreAggregation string

// The compared aggregations (§3.3(d) discusses this spectrum).
const (
	AggLocalize ScoreAggregation = "localize-and-estimate" // the paper's choice
	AggMax      ScoreAggregation = "max"
	AggMean     ScoreAggregation = "mean"
)

// aggregate reduces window errors to a connection score.
func aggregate(errs []float64, agg ScoreAggregation, window int) float64 {
	if len(errs) == 0 {
		return 0
	}
	switch agg {
	case AggMax:
		max := errs[0]
		for _, e := range errs {
			if e > max {
				max = e
			}
		}
		return max
	case AggMean:
		var sum float64
		for _, e := range errs {
			sum += e
		}
		return sum / float64(len(errs))
	default:
		peak := 0
		for i, e := range errs {
			if e > errs[peak] {
				peak = i
			}
		}
		lo, hi := peak-window/2, peak+window/2+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(errs) {
			hi = len(errs)
		}
		var sum float64
		for _, e := range errs[lo:hi] {
			sum += e
		}
		return sum / float64(hi-lo)
	}
}

// EvaluateScoreMetric computes the mean paired AUC of the suite's CLAP
// detector under an alternative score aggregation, with window errors
// computed through the parallel engine.
func (s *Suite) EvaluateScoreMetric(agg ScoreAggregation, names []string) float64 {
	eng := s.engineOrDefault()
	w := s.Opt.CLAP.ScoreWindow
	scoreAgg := func(c *flow.Connection) float64 {
		return aggregate(s.CLAP.WindowErrors(c), agg, w)
	}
	baseScores := s.baseScoreMap(names, scoreAgg)

	var sum float64
	var n int
	for _, name := range names {
		conns := s.Data.Adv[name]
		srcs := s.Data.AdvSrc[name]
		if len(conns) == 0 {
			continue
		}
		adv := eng.MapFloat(conns, scoreAgg)
		ben := make([]float64, len(conns))
		for i := range conns {
			ben[i] = baseScores[srcs[i]]
		}
		sum += metrics.AUC(ben, adv)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AblationReport renders a comparison line.
func AblationReport(label string, baseline, variant float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation %-28s baseline(CLAP)=%.3f variant=%.3f Δ=%+.3f\n",
		label, baseline, variant, variant-baseline)
	return b.String()
}
