// Package core implements CLAP itself — the paper's four-stage pipeline
// (§3.3): (a) a GRU-RNN trained to predict reference TCP states, whose gate
// activations carry the inter-packet context; (b) fusion of packet features
// and gate weights into (stacked) context profiles; (c) an autoencoder that
// learns the joint benign context distribution with L1 loss; and (d)
// verification — per-window reconstruction errors summarised by the
// localize-and-estimate adversarial score, with Top-N localization.
package core

import (
	"clap/internal/features"
	"clap/internal/tcpstate"
)

// Config carries every hyper-parameter of the pipeline. DefaultConfig
// mirrors the paper's Table 6; the ablation switches (gates, amplification,
// stacking) exist so the benches can quantify each design choice, and
// Baseline #1 is expressed as a Config too (§4.1).
type Config struct {
	Seed int64

	// RNN (Table 6: 1 layer, input 32, hidden/gate size 32).
	RNNHidden int
	RNNEpochs int
	RNNLearn  float64
	RNNClip   float64

	// Autoencoder (Table 6: 7 layers, input 345, bottleneck 40). Hidden is
	// the encoder-side interior; the decoder mirrors it.
	AEHidden []int
	AEEpochs int
	AEBatch  int
	AELearn  float64
	AEClip   float64
	// AERestarts trains the autoencoder from several random inits and
	// keeps the one with the lowest final training loss. Narrow
	// bottlenecks (Baseline #1's 5 units) are sensitive to initialisation;
	// restarts recover the paper's heavily-trained optimum at a fraction
	// of its 1000-epoch budget. 0 or 1 means a single run.
	AERestarts int

	// Context-profile construction (Table 6: stacking length 3).
	StackLength int
	// ScoreWindow is the localize-and-estimate averaging window (5, §3.3(d)).
	ScoreWindow int

	// Ablation switches. CLAP proper uses all three.
	UseUpdateGates   bool
	UseResetGates    bool
	UseAmplification bool

	// Endhost reference configuration for labels.
	Endhost tcpstate.Config
}

// DefaultConfig returns the paper's CLAP configuration with training
// schedules suitable for the Fast evaluation profile.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		RNNHidden: 32, RNNEpochs: 12, RNNLearn: 3e-3, RNNClip: 5,
		AEHidden: []int{160, 80, 40}, AEEpochs: 8, AEBatch: 32, AELearn: 1e-3, AEClip: 5,
		StackLength: 3, ScoreWindow: 5,
		UseUpdateGates: true, UseResetGates: true, UseAmplification: true,
		Endhost: tcpstate.DefaultConfig(),
	}
}

// TinyConfig shrinks training schedules for unit tests. Model shapes stay
// paper-faithful; only epochs shrink.
func TinyConfig() Config {
	c := DefaultConfig()
	c.RNNEpochs, c.AEEpochs = 4, 3
	return c
}

// Baseline1Config is the paper's Baseline #1 (§4.1): the same pipeline with
// all gate-weight features removed and profiles limited to a single packet
// — a temporal-context-agnostic CLAP. Table 6: AE input 51, 3 layers,
// bottleneck 5.
func Baseline1Config() Config {
	c := DefaultConfig()
	c.UseUpdateGates, c.UseResetGates = false, false
	c.StackLength = 1
	c.AEHidden = []int{5}
	return c
}

// ProfileWidth returns the per-packet context-profile dimensionality under
// this config: packet features plus the selected gate blocks.
func (c Config) ProfileWidth() int {
	w := features.NumPacket
	if !c.UseAmplification {
		w = features.NumRNN
	}
	if c.UseUpdateGates {
		w += c.RNNHidden
	}
	if c.UseResetGates {
		w += c.RNNHidden
	}
	return w
}

// AESizes returns the full autoencoder layer chain for this config
// (input, hidden..., bottleneck, mirrored hidden..., output).
func (c Config) AESizes() []int {
	in := c.ProfileWidth() * c.StackLength
	sizes := []int{in}
	sizes = append(sizes, c.AEHidden...)
	for i := len(c.AEHidden) - 2; i >= 0; i-- {
		sizes = append(sizes, c.AEHidden[i])
	}
	sizes = append(sizes, in)
	return sizes
}
