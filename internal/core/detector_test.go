package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"clap/internal/attacks"
	"clap/internal/features"
	"clap/internal/flow"
	"clap/internal/metrics"
	"clap/internal/trafficgen"
)

func benignSet(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

// trainTiny trains one shared detector for the package tests.
var tinyDet *Detector

func testDetector(t *testing.T) *Detector {
	t.Helper()
	if tinyDet != nil {
		return tinyDet
	}
	d, err := Train(benignSet(60, 1), TinyConfig(), nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	tinyDet = d
	return d
}

func TestConfigShapesMatchTable6(t *testing.T) {
	cfg := DefaultConfig()
	if w := cfg.ProfileWidth(); w != 115 {
		t.Errorf("profile width = %d, want 115 (51 features + 2×32 gates)", w)
	}
	sizes := cfg.AESizes()
	if sizes[0] != 345 || sizes[len(sizes)-1] != 345 {
		t.Errorf("AE input/output = %d/%d, want 345 (Table 6)", sizes[0], sizes[len(sizes)-1])
	}
	if len(sizes) != 7 {
		t.Errorf("AE has %d layers in the chain, want 7 (Table 6)", len(sizes))
	}
	min := sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
	}
	if min != 40 {
		t.Errorf("bottleneck = %d, want 40 (Table 6)", min)
	}

	b1 := Baseline1Config()
	if w := b1.ProfileWidth(); w != features.NumPacket {
		t.Errorf("Baseline#1 profile width = %d, want %d", w, features.NumPacket)
	}
	b1s := b1.AESizes()
	if b1s[0] != 51 || len(b1s) != 3 || b1s[1] != 5 {
		t.Errorf("Baseline#1 AE chain = %v, want [51 5 51] (Table 6)", b1s)
	}
}

func TestTrainRejectsEmptyInput(t *testing.T) {
	if _, err := Train(nil, TinyConfig(), nil); err == nil {
		t.Fatal("Train on empty set should fail")
	}
}

func TestProfileAndWindowShapes(t *testing.T) {
	d := testDetector(t)
	conns := benignSet(5, 99)
	for _, c := range conns {
		profs := d.ContextProfiles(c)
		if len(profs) != c.Len() {
			t.Fatalf("%d profiles for %d packets", len(profs), c.Len())
		}
		for _, p := range profs {
			if len(p) != d.Cfg.ProfileWidth() {
				t.Fatalf("profile width %d, want %d", len(p), d.Cfg.ProfileWidth())
			}
		}
		wins := d.StackedProfiles(c)
		wantWins := c.Len() - d.Cfg.StackLength + 1
		if wantWins < 1 {
			wantWins = 1
		}
		if len(wins) != wantWins {
			t.Fatalf("%d windows for %d packets, want %d", len(wins), c.Len(), wantWins)
		}
		errs := d.WindowErrors(c)
		if len(errs) != len(wins) {
			t.Fatalf("%d errors for %d windows", len(errs), len(wins))
		}
		for _, e := range errs {
			if math.IsNaN(e) || e < 0 {
				t.Fatalf("bad reconstruction error %g", e)
			}
		}
	}
}

func TestShortConnectionPadding(t *testing.T) {
	d := testDetector(t)
	conns := benignSet(40, 7)
	for _, c := range conns {
		if c.Len() >= d.Cfg.StackLength {
			continue
		}
		wins := d.StackedProfiles(c)
		if len(wins) != 1 {
			t.Fatalf("short connection should yield one padded window, got %d", len(wins))
		}
		if len(wins[0]) != d.Cfg.ProfileWidth()*d.Cfg.StackLength {
			t.Fatal("padded window has wrong width")
		}
		s := d.Score(c)
		if s.PeakWindow != 0 {
			t.Fatalf("padded window peak = %d", s.PeakWindow)
		}
		return
	}
	t.Skip("no short connections in sample")
}

func TestScoreEmptyConnection(t *testing.T) {
	d := testDetector(t)
	s := d.Score(&flow.Connection{})
	if s.PeakWindow != -1 || s.Adversarial != 0 {
		t.Errorf("empty connection score = %+v", s)
	}
	if d.Localize(&flow.Connection{}, 3) != nil {
		t.Error("Localize on empty connection should be nil")
	}
}

// TestDetectsMotivatingExample trains a tiny CLAP and checks the paper's
// §1 example end to end: Bad-Checksum-RST connections must score clearly
// above benign traffic.
func TestDetectsMotivatingExample(t *testing.T) {
	d := testDetector(t)
	testBenign := benignSet(40, 555)
	strategy, ok := attacks.ByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	if !ok {
		t.Fatal("strategy missing")
	}
	rng := rand.New(rand.NewSource(3))
	var benignScores, advScores []float64
	for _, c := range testBenign {
		benignScores = append(benignScores, d.Score(c).Adversarial)
		cc := c.Clone()
		if strategy.Apply(cc, rng) {
			advScores = append(advScores, d.Score(cc).Adversarial)
		}
	}
	if len(advScores) < 10 {
		t.Fatalf("attack applied to only %d connections", len(advScores))
	}
	auc := metrics.AUC(benignScores, advScores)
	if auc < 0.90 {
		t.Errorf("AUC for the motivating example = %.3f, want >= 0.90 even in tiny config", auc)
	}
}

func TestLocalizationFindsInjectedPacket(t *testing.T) {
	d := testDetector(t)
	strategy, _ := attacks.ByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	rng := rand.New(rand.NewSource(5))
	hits, total := 0, 0
	for _, c := range benignSet(40, 777) {
		cc := c.Clone()
		if !strategy.Apply(cc, rng) {
			continue
		}
		total++
		if d.LocalizationHit(cc, 5) {
			hits++
		}
	}
	if total < 10 {
		t.Fatalf("only %d applications", total)
	}
	if rate := float64(hits) / float64(total); rate < 0.7 {
		t.Errorf("Top-5 localization hit rate = %.2f, want >= 0.7 in tiny config", rate)
	}
}

func TestLocalizationHitRequiresAdversarial(t *testing.T) {
	d := testDetector(t)
	c := benignSet(1, 31)[0]
	if d.LocalizationHit(c, 5) {
		t.Error("benign connection cannot produce a localization hit")
	}
}

func TestRNNAccuracyReasonable(t *testing.T) {
	d := testDetector(t)
	hits, totals := d.RNNAccuracy(benignSet(40, 888))
	var h, n int
	for c := 0; c < len(totals); c++ {
		h += hits[c]
		n += totals[c]
	}
	if n == 0 {
		t.Fatal("no labeled packets")
	}
	if acc := float64(h) / float64(n); acc < 0.85 {
		t.Errorf("overall RNN accuracy = %.3f, want >= 0.85 even in tiny config", acc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := testDetector(t)
	c := benignSet(1, 123)[0]
	want := d.Score(c)

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	got := d2.Score(c)
	if math.Abs(got.Adversarial-want.Adversarial) > 1e-12 || got.PeakWindow != want.PeakWindow {
		t.Errorf("score after round trip = %+v, want %+v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("nonsense"))); err == nil {
		t.Error("Load should reject garbage")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := testDetector(t)
	path := t.TempDir() + "/model/clap.gob"
	if err := d.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("LoadFile should fail on a missing file")
	}
}

func TestBaseline1HasNoGateFeatures(t *testing.T) {
	d, err := Train(benignSet(30, 2), func() Config {
		c := Baseline1Config()
		c.RNNEpochs, c.AEEpochs = 2, 2
		return c
	}(), nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	c := benignSet(1, 44)[0]
	profs := d.ContextProfiles(c)
	if len(profs[0]) != features.NumPacket {
		t.Errorf("Baseline#1 profile width = %d, want %d", len(profs[0]), features.NumPacket)
	}
	wins := d.StackedProfiles(c)
	if len(wins) != c.Len() {
		t.Errorf("Baseline#1 should have one window per packet, got %d for %d", len(wins), c.Len())
	}
}

func TestScoreWindowAveraging(t *testing.T) {
	d := testDetector(t)
	s := d.scoreFromErrors([]float64{0.1, 0.1, 5.0, 0.1, 0.1, 0.1, 0.1})
	if s.PeakWindow != 2 {
		t.Fatalf("peak = %d, want 2", s.PeakWindow)
	}
	want := (0.1 + 0.1 + 5.0 + 0.1 + 0.1) / 5
	if math.Abs(s.Adversarial-want) > 1e-12 {
		t.Errorf("adversarial score = %g, want %g (mean over the 5-window)", s.Adversarial, want)
	}
	// Peak at the edge: window clips.
	s = d.scoreFromErrors([]float64{5.0, 0.1, 0.1})
	want = (5.0 + 0.1 + 0.1) / 3
	if math.Abs(s.Adversarial-want) > 1e-12 {
		t.Errorf("edge adversarial score = %g, want %g", s.Adversarial, want)
	}
}

func TestDetectorString(t *testing.T) {
	d := testDetector(t)
	if d.String() == "" {
		t.Error("String should describe the detector")
	}
}
