package core

import (
	"fmt"

	"clap/internal/features"
	"clap/internal/flow"
	"clap/internal/nn"
)

// LockstepSession binds connections to the rows of one nn.GRULockstep
// fleet and harvests their context profiles as the fleet steps: the
// stage-(b) window production of StackedProfilesBatched, K connections
// wide. The engine's ragged scheduler drives it row by row —
//
//	steps := s.Load(row, conn)   // bind a connection to a free row
//	s.Step(n)                    // advance the active prefix [0, n)
//	wins := s.Windows(row)       // after steps Steps: the stacked windows
//	s.Move(dst, src)             // compaction, after harvesting src
//
// Windows results are bit-identical to Detector.StackedProfilesBatched
// for the same connection (same pooled carving, so they are recycled
// through the same RecycleStacked), because the lockstep gates are
// bit-identical to ForwardGates and everything downstream of the gates
// is shared code.
//
// A session is single-goroutine state over a read-only detector; open
// one per worker.
type LockstepSession struct {
	d         *Detector
	ls        *nn.GRULockstep
	featWidth int
	width     int
	rows      []lockstepConn
}

type lockstepConn struct {
	vecs  [][]float64
	xs    [][]float64 // RNNInputs view of vecs
	pos   int
	pb    []float64 // pooled profile backing (getBacking)
	profs [][]float64
}

// LockstepSupported reports whether this detector's configuration runs a
// GRU on the scoring path at all. Gate-free configurations (Baseline #1)
// build their profiles without a recurrence — there is nothing to step
// in lockstep, and NewLockstepSession returns nil for them.
func (d *Detector) LockstepSupported() bool {
	return d.Cfg.UseUpdateGates || d.Cfg.UseResetGates
}

// NewLockstepSession opens a k-row lockstep window-production session,
// or nil when the configuration has no recurrence to batch.
func (d *Detector) NewLockstepSession(k int) *LockstepSession {
	if !d.LockstepSupported() {
		return nil
	}
	return &LockstepSession{
		d:         d,
		ls:        d.RNN.NewLockstep(k),
		featWidth: d.featWidth(),
		width:     d.Cfg.ProfileWidth(),
		rows:      make([]lockstepConn, k),
	}
}

// featWidth is the packet-feature prefix of a context profile row (the
// part that comes straight from the feature vector, before gate blocks).
func (d *Detector) featWidth() int {
	if d.Cfg.UseAmplification {
		return features.NumPacket
	}
	return features.NumRNN
}

// Load binds a connection to a fleet row and returns how many lockstep
// steps it needs (its packet count). 0 means the connection produces no
// windows — it never occupies the row and Windows must not be called.
func (s *LockstepSession) Load(row int, c *flow.Connection) int {
	vecs := s.d.Profile.Vectorize(c)
	if len(vecs) == 0 {
		return 0
	}
	s.ls.Reset(row)
	s.rows[row] = lockstepConn{
		vecs:  vecs,
		xs:    features.RNNInputs(vecs),
		pb:    getBacking(len(vecs) * s.width),
		profs: make([][]float64, 0, len(vecs)),
	}
	return len(vecs)
}

// Step advances rows [0, n) by one packet each: stages every row's next
// feature vector, steps the fleet, and appends each row's context
// profile (packet features ++ gate blocks, Equation 2) to its pooled
// profile backing. Every row in the prefix must be mid-sequence.
func (s *LockstepSession) Step(n int) {
	for b := 0; b < n; b++ {
		r := &s.rows[b]
		if r.pos >= len(r.vecs) {
			panic(fmt.Sprintf("core: lockstep Step over finished row %d", b))
		}
		s.ls.StageInput(b, r.xs[r.pos])
	}
	s.ls.Step(n)
	for b := 0; b < n; b++ {
		r := &s.rows[b]
		start := len(r.pb)
		r.pb = append(r.pb, r.vecs[r.pos][:s.featWidth]...)
		if s.d.Cfg.UseUpdateGates {
			r.pb = append(r.pb, s.ls.Z(b)...)
		}
		if s.d.Cfg.UseResetGates {
			r.pb = append(r.pb, s.ls.R(b)...)
		}
		// Two-index carving, like contextProfiles' pooled mode: the whole
		// backing is recoverable from row 0 at recycle time.
		r.profs = append(r.profs, r.pb[start:len(r.pb)])
		r.pos++
	}
}

// Windows returns the finished row's stacked profile windows — pooled,
// bit-identical to StackedProfilesBatched(c), to be handed back through
// Detector.RecycleStacked after scoring. The row is released.
func (s *LockstepSession) Windows(row int) [][]float64 {
	r := &s.rows[row]
	if r.pos < len(r.vecs) {
		panic(fmt.Sprintf("core: lockstep Windows on unfinished row %d (%d/%d)", row, r.pos, len(r.vecs)))
	}
	profs, pb := r.profs, r.pb
	s.rows[row] = lockstepConn{} // release references
	t := s.d.Cfg.StackLength
	if t <= 1 {
		// The profiles are the windows; their backing is recycled by
		// RecycleStacked, not here — exactly StackedProfilesBatched.
		return profs
	}
	wins := s.d.stackPooled(profs, t)
	putBacking(pb)
	return wins
}

// Move relocates a live row during the scheduler's compaction: dst takes
// over src's connection and recurrence state. Call only after dst has
// been harvested (Windows) or was never loaded.
func (s *LockstepSession) Move(dst, src int) {
	if dst == src {
		return
	}
	s.ls.Move(dst, src)
	s.rows[dst] = s.rows[src]
	s.rows[src] = lockstepConn{}
}
