package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"clap/internal/features"
	"clap/internal/flow"
	"clap/internal/nn"
	"clap/internal/tcpstate"
)

// Detector is a trained CLAP instance: the fitted feature profile, the
// state-prediction RNN and the context autoencoder, plus the configuration
// they were trained under.
//
// A trained Detector is safe for concurrent use: the inference methods
// (Score, WindowErrors, ContextProfiles, StackedProfiles, Localize,
// LocalizationHit, RNNAccuracy and friends) only read model state — every
// scratch buffer in the nn forward passes is per-call or pooled. The
// parallel scoring engine (internal/engine) relies on this contract.
type Detector struct {
	Cfg     Config
	Profile *features.Profile
	RNN     *nn.GRUClassifier
	AE      *nn.Autoencoder
}

// ErrNoTrainingData is returned when Train receives no usable connections.
var ErrNoTrainingData = errors.New("core: no training connections")

// Logf is an optional progress sink for Train.
type Logf func(format string, args ...any)

// Train runs stages (a)-(c) over benign connections and returns a ready
// detector.
func Train(benign []*flow.Connection, cfg Config, logf Logf) (*Detector, error) {
	if len(benign) == 0 {
		return nil, ErrNoTrainingData
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	d := &Detector{Cfg: cfg}
	d.Profile = features.FitProfile(benign)
	logf("fitted feature profile on %d packets", d.Profile.Fitted)

	// Vectorize once; both stages reuse the feature matrices.
	vecs := make([][][]float64, len(benign))
	labels := make([][]int, len(benign))
	for i, c := range benign {
		vecs[i] = d.Profile.Vectorize(c)
		ls := tcpstate.Labels(c, cfg.Endhost)
		labels[i] = make([]int, len(ls))
		for j, l := range ls {
			labels[i][j] = l.Class()
		}
	}

	// Stage (a): RNN learns reference-state prediction.
	d.RNN = nn.NewGRUClassifier(features.NumRNN, cfg.RNNHidden, tcpstate.NumClasses, rng)
	opt := nn.NewAdam(cfg.RNNLearn)
	opt.Register(d.RNN.Params()...)
	order := rng.Perm(len(benign))
	for epoch := 0; epoch < cfg.RNNEpochs; epoch++ {
		var loss float64
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			if len(vecs[i]) == 0 {
				continue
			}
			loss += d.RNN.TrainSequence(features.RNNInputs(vecs[i]), labels[i], opt, cfg.RNNClip)
		}
		logf("RNN epoch %d/%d: mean loss %.4f", epoch+1, cfg.RNNEpochs, loss/float64(len(benign)))
	}

	// Stage (b): benign context profiles.
	var stacked [][]float64
	for i := range benign {
		profs := d.contextProfiles(vecs[i], false, nil)
		stacked = append(stacked, d.stack(profs)...)
	}
	logf("built %d stacked context profiles (width %d)", len(stacked), cfg.ProfileWidth()*cfg.StackLength)

	// Stage (c): autoencoder learns the joint context distribution.
	// Restarts are selected by the benign score floor on a held-out
	// validation slice: the detector's false-positive behaviour depends on
	// the *peak* reconstruction error over benign connections, not the
	// mean training loss, and narrow bottlenecks land in basins that
	// differ mostly in that peak flatness.
	restarts := cfg.AERestarts
	if restarts < 1 {
		restarts = 1
	}
	valStart := len(benign) * 85 / 100
	if restarts == 1 || len(benign)-valStart < 8 {
		valStart = len(benign) // no validation split needed
	}
	var valWindows [][][]float64
	for i := valStart; i < len(benign); i++ {
		profs := d.contextProfiles(vecs[i], false, nil)
		if w := d.stack(profs); len(w) > 0 {
			valWindows = append(valWindows, w)
		}
	}
	bestFloor := 0.0
	for r := 0; r < restarts; r++ {
		ae, loss := trainAE(stacked, cfg, rand.New(rand.NewSource(cfg.Seed+int64(r)*7919)), r, logf)
		floor := loss
		if len(valWindows) > 0 {
			floor = benignScoreFloor(d, ae, valWindows)
		}
		logf("AE[restart %d] benign score floor %.5f", r, floor)
		if d.AE == nil || floor < bestFloor {
			d.AE, bestFloor = ae, floor
		}
	}
	if restarts > 1 {
		logf("kept autoencoder with benign score floor %.5f", bestFloor)
	}
	return d, nil
}

// benignScoreFloor computes the 90th-percentile connection score of a
// candidate autoencoder over pre-stacked validation windows.
func benignScoreFloor(d *Detector, ae *nn.Autoencoder, valWindows [][][]float64) float64 {
	scores := make([]float64, 0, len(valWindows))
	tmp := &Detector{Cfg: d.Cfg, Profile: d.Profile, RNN: d.RNN, AE: ae}
	for _, wins := range valWindows {
		scores = append(scores, tmp.scoreFromErrors(ae.Errors(wins)).Adversarial)
	}
	sort.Float64s(scores)
	return scores[len(scores)*9/10]
}

// trainAE runs one full autoencoder training with a stepped learning-rate
// schedule (halved at 50%% and 75%% of the epoch budget) and returns the
// model with its final-epoch mean loss.
func trainAE(stacked [][]float64, cfg Config, rng *rand.Rand, restart int, logf Logf) (*nn.Autoencoder, float64) {
	ae := nn.NewAutoencoder(cfg.AESizes(), rng)
	opt := nn.NewAdam(cfg.AELearn)
	opt.Register(ae.Params()...)
	batch := cfg.AEBatch
	if batch <= 0 {
		batch = 32
	}
	idx := rng.Perm(len(stacked))
	var epochLoss float64
	for epoch := 0; epoch < cfg.AEEpochs; epoch++ {
		switch {
		case epoch == cfg.AEEpochs*3/4:
			opt.LR = cfg.AELearn / 4
		case epoch == cfg.AEEpochs/2:
			opt.LR = cfg.AELearn / 2
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var loss float64
		var batches int
		for at := 0; at < len(idx); at += batch {
			end := at + batch
			if end > len(idx) {
				end = len(idx)
			}
			xs := make([][]float64, 0, end-at)
			for _, k := range idx[at:end] {
				xs = append(xs, stacked[k])
			}
			loss += ae.TrainBatchParallel(xs, opt, cfg.AEClip, runtime.NumCPU())
			batches++
		}
		epochLoss = loss / float64(batches)
		if epoch == cfg.AEEpochs-1 || (epoch+1)%10 == 0 || cfg.AEEpochs <= 10 {
			logf("AE[restart %d] epoch %d/%d: mean L1 loss %.5f", restart, epoch+1, cfg.AEEpochs, epochLoss)
		}
	}
	return ae, epochLoss
}

// backingPool recycles the batched scoring path's flat float64 backings
// (context profiles, stacked windows). At ~3KB per window, allocating
// them fresh per connection makes the garbage collector a measurable
// fraction of the hot path; the pool keeps steady-state batched scoring
// allocation-free. Only the batched path uses it — its buffers have a
// clear release point (engine / pipeline recycle after scoring) — while
// the serial path keeps plain allocations, since its windows escape to
// callers indefinitely (training, forensics).
var backingPool sync.Pool

// getBacking returns a zero-length float64 buffer with at least the given
// capacity.
func getBacking(n int) []float64 {
	if v := backingPool.Get(); v != nil {
		if b := *(v.(*[]float64)); cap(b) >= n {
			return b[:0]
		}
	}
	return make([]float64, 0, n)
}

// putBacking recycles a buffer obtained from getBacking.
func putBacking(b []float64) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	backingPool.Put(&b)
}

// contextProfiles fuses packet features with the RNN's per-step gate
// activations (Equation 2): CxtProf = [P_IP, P_TCP, P_amp, G_update,
// G_reset]. batched selects the batched GRU kernel, which hoists the
// input projections of the whole sequence into matrix-matrix passes;
// both kernels produce bit-identical gates. A non-nil backing (capacity
// >= len(vecs)*ProfileWidth) is carved into the profile rows instead of a
// fresh allocation — the batched path passes a pooled one.
func (d *Detector) contextProfiles(vecs [][]float64, batched bool, backing []float64) [][]float64 {
	if len(vecs) == 0 {
		return nil
	}
	// ForwardGates skips the softmax head the scoring path never reads; its
	// Z/R are bit-identical to the full Forward pass.
	var gz, gr [][]float64
	if d.Cfg.UseUpdateGates || d.Cfg.UseResetGates {
		if batched {
			// Pooled gate buffers: the gates are copied into the profile
			// rows below, so the backing is released before returning.
			var release func()
			gz, gr, release = d.RNN.ForwardGatesBatchPooled(features.RNNInputs(vecs))
			defer release()
		} else {
			gz, gr = d.RNN.ForwardGates(features.RNNInputs(vecs))
		}
	}
	width := d.Cfg.ProfileWidth()
	featWidth := features.NumPacket
	if !d.Cfg.UseAmplification {
		featWidth = features.NumRNN
	}
	out := make([][]float64, len(vecs))
	// One backing array for all profiles: n small slices would otherwise
	// be n allocations the GC has to trace on the scoring hot path.
	// Pooled backings are carved as two-index slices so the buffer can be
	// recovered from row 0 at recycle time; fresh ones get full-cap rows.
	pooled := backing != nil
	if !pooled {
		backing = make([]float64, 0, len(vecs)*width)
	}
	for t, v := range vecs {
		start := len(backing)
		backing = append(backing, v[:featWidth]...)
		if d.Cfg.UseUpdateGates {
			backing = append(backing, gz[t]...)
		}
		if d.Cfg.UseResetGates {
			backing = append(backing, gr[t]...)
		}
		if pooled {
			out[t] = backing[start:len(backing)]
		} else {
			out[t] = backing[start:len(backing):len(backing)]
		}
	}
	return out
}

// ContextProfiles computes per-packet context profiles for a connection.
func (d *Detector) ContextProfiles(c *flow.Connection) [][]float64 {
	return d.contextProfiles(d.Profile.Vectorize(c), false, nil)
}

// stack concatenates every StackLength consecutive profiles in a sliding
// window (n−t+1 windows, §3.3(d)). Connections shorter than the stack
// length yield a single window left-padded by replicating the first
// profile: replicated profiles stay on the benign feature manifold, whereas
// zero blocks would be out-of-distribution by construction and make every
// short connection look adversarial.
func (d *Detector) stack(profs [][]float64) [][]float64 {
	t := d.Cfg.StackLength
	if t <= 1 {
		return profs
	}
	if len(profs) == 0 {
		return nil
	}
	width := len(profs[0])
	if len(profs) < t {
		win := make([]float64, 0, t*width)
		for pad := 0; pad < t-len(profs); pad++ {
			win = append(win, profs[0]...)
		}
		for _, p := range profs {
			win = append(win, p...)
		}
		return [][]float64{win}
	}
	n := len(profs) - t + 1
	out := make([][]float64, 0, n)
	// One backing array for every window, carved into full-cap slices —
	// the windows are the scoring path's dominant allocation.
	backing := make([]float64, 0, n*t*width)
	for i := 0; i+t <= len(profs); i++ {
		start := len(backing)
		for _, p := range profs[i : i+t] {
			backing = append(backing, p...)
		}
		out = append(out, backing[start:len(backing):len(backing)])
	}
	return out
}

// StackedProfiles returns the sliding-window stacked profiles of a
// connection.
func (d *Detector) StackedProfiles(c *flow.Connection) [][]float64 {
	return d.stack(d.ContextProfiles(c))
}

// stackPooled is stack over a pooled backing, for the batched scoring
// path: windows are carved as two-index slices so RecycleStacked can
// recover the whole buffer from window 0. Values are identical to stack.
func (d *Detector) stackPooled(profs [][]float64, t int) [][]float64 {
	width := len(profs[0])
	if len(profs) < t {
		win := getBacking(t * width)
		for pad := 0; pad < t-len(profs); pad++ {
			win = append(win, profs[0]...)
		}
		for _, p := range profs {
			win = append(win, p...)
		}
		return [][]float64{win}
	}
	n := len(profs) - t + 1
	out := make([][]float64, 0, n)
	backing := getBacking(n * t * width)
	for i := 0; i+t <= len(profs); i++ {
		start := len(backing)
		for _, p := range profs[i : i+t] {
			backing = append(backing, p...)
		}
		out = append(out, backing[start:len(backing)])
	}
	return out
}

// StackedProfilesBatched is StackedProfiles through the batched GRU kernel
// (nn.ForwardGatesBatch) — the stage-(b) half of the batched scoring path.
// Output is bit-identical to StackedProfiles, but the returned windows are
// carved from pooled buffers: hand them back via RecycleStacked once they
// have been scored, and do not touch them afterwards.
func (d *Detector) StackedProfilesBatched(c *flow.Connection) [][]float64 {
	vecs := d.Profile.Vectorize(c)
	if len(vecs) == 0 {
		return nil
	}
	pb := getBacking(len(vecs) * d.Cfg.ProfileWidth())
	profs := d.contextProfiles(vecs, true, pb)
	t := d.Cfg.StackLength
	if t <= 1 {
		// The profiles are the windows; their backing is recycled by
		// RecycleStacked, not here.
		return profs
	}
	wins := d.stackPooled(profs, t)
	putBacking(pb)
	return wins
}

// RecycleStacked returns the pooled buffer behind a StackedProfilesBatched
// result for reuse. The windows must not be read after the call. Nil/empty
// results are no-ops.
func (d *Detector) RecycleStacked(wins [][]float64) {
	if len(wins) == 0 {
		return
	}
	putBacking(wins[0][:0])
}

// WindowErrors runs the autoencoder over every stacked profile and returns
// the per-window L1 reconstruction errors.
func (d *Detector) WindowErrors(c *flow.Connection) []float64 {
	return d.AE.Errors(d.StackedProfiles(c))
}

// Score is the verification result for one connection.
type Score struct {
	// Adversarial is the localize-and-estimate adversarial score: the mean
	// reconstruction error over ScoreWindow windows centred on the peak.
	Adversarial float64
	// PeakWindow is the index of the stacked profile with the maximum
	// reconstruction error (the localization anchor).
	PeakWindow int
	// Errors holds the raw per-window reconstruction errors (Figure 6's
	// series).
	Errors []float64
}

// Score runs stage (d) on a connection.
func (d *Detector) Score(c *flow.Connection) Score {
	errs := d.WindowErrors(c)
	return d.scoreFromErrors(errs)
}

// ScoreFromErrors summarises precomputed window errors into a Score —
// stage (d) without re-running the inference pipeline, for callers that
// already hold a connection's WindowErrors.
func (d *Detector) ScoreFromErrors(errs []float64) Score { return d.scoreFromErrors(errs) }

func (d *Detector) scoreFromErrors(errs []float64) Score {
	if len(errs) == 0 {
		return Score{PeakWindow: -1}
	}
	peak := 0
	for i, e := range errs {
		if e > errs[peak] {
			peak = i
		}
	}
	w := d.Cfg.ScoreWindow
	if w <= 0 {
		w = 5
	}
	lo := peak - w/2
	hi := peak + w/2 + 1
	if lo < 0 {
		lo = 0
	}
	if hi > len(errs) {
		hi = len(errs)
	}
	var sum float64
	for _, e := range errs[lo:hi] {
		sum += e
	}
	return Score{Adversarial: sum / float64(hi-lo), PeakWindow: peak, Errors: errs}
}

// windowCoversPacket reports whether stacked-profile window w includes
// packet index p for a connection of n packets.
func (d *Detector) windowCoversPacket(w, p, n int) bool {
	t := d.Cfg.StackLength
	if n < t {
		return true // single padded window covers the whole train
	}
	return p >= w && p < w+t
}

// TopWindows ranks a window-error series and returns the indices of the
// topN highest-error windows, best first (stable insertion sort, ties
// broken by window order) — the single ranking implementation behind both
// the serial forensic path and the backend-agnostic pipeline.
func TopWindows(errs []float64, topN int) []int {
	if len(errs) == 0 {
		return nil
	}
	idx := make([]int, len(errs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ { // insertion sort by error desc (small n)
		for j := i; j > 0 && errs[idx[j]] > errs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	if topN < len(idx) {
		idx = idx[:topN]
	}
	return idx
}

// LocalizeErrors ranks precomputed window errors, returning the indices of
// the topN highest-error windows.
func (d *Detector) LocalizeErrors(errs []float64, topN int) []int {
	return TopWindows(errs, topN)
}

// Localize returns the indices of the topN highest-error windows, each
// expanded to the packet range it covers — CLAP's forensic output
// (§3.3(d)).
func (d *Detector) Localize(c *flow.Connection, topN int) []int {
	return d.LocalizeErrors(d.WindowErrors(c), topN)
}

// LocalizationHitErrors implements the paper's Top-N hit criterion on
// precomputed window errors: do the N highest-error context profiles
// intersect the actual adversarial packets?
func (d *Detector) LocalizationHitErrors(c *flow.Connection, errs []float64, topN int) bool {
	if !c.IsAdversarial() {
		return false
	}
	for _, w := range d.LocalizeErrors(errs, topN) {
		for _, a := range c.AdvIdx {
			if d.windowCoversPacket(w, a, c.Len()) {
				return true
			}
		}
	}
	return false
}

// LocalizationHit is LocalizationHitErrors over a fresh inference pass.
func (d *Detector) LocalizationHit(c *flow.Connection, topN int) bool {
	return d.LocalizationHitErrors(c, d.WindowErrors(c), topN)
}

// RNNAccuracyConn evaluates stage (a) per label class over one connection —
// the unit the parallel engine fans out. It returns hit and total counts
// per class.
func (d *Detector) RNNAccuracyConn(c *flow.Connection) (hits, totals [tcpstate.NumClasses]int) {
	vecs := d.Profile.Vectorize(c)
	if len(vecs) == 0 {
		return hits, totals
	}
	pred := d.RNN.Predict(features.RNNInputs(vecs))
	ls := tcpstate.Labels(c, d.Cfg.Endhost)
	for i, l := range ls {
		totals[l.Class()]++
		if pred[i] == l.Class() {
			hits[l.Class()]++
		}
	}
	return hits, totals
}

// RNNAccuracy evaluates stage (a) per label class over a held-out set,
// regenerating Table 5. It returns hit and total counts per class.
func (d *Detector) RNNAccuracy(conns []*flow.Connection) (hits, totals [tcpstate.NumClasses]int) {
	for _, c := range conns {
		h, t := d.RNNAccuracyConn(c)
		for cl := 0; cl < tcpstate.NumClasses; cl++ {
			hits[cl] += h[cl]
			totals[cl] += t[cl]
		}
	}
	return hits, totals
}

// String summarises the detector.
func (d *Detector) String() string {
	return fmt.Sprintf("CLAP{profile=%d pkts, rnn=%d/%d/%d, ae=%v, stack=%d}",
		d.Profile.Fitted, d.RNN.In, d.RNN.Hidden, d.RNN.Classes, d.Cfg.AESizes(), d.Cfg.StackLength)
}
