package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"clap/internal/features"
	"clap/internal/nn"
)

// The detector persists as a single gob stream: config, feature profile,
// then the two models framed as byte blobs. The blob framing matters: a
// gob decoder may read ahead on readers without io.ByteReader (e.g.
// *os.File), so the models cannot safely follow as separate gob streams on
// the same reader.

// Save writes the full detector to w.
func (d *Detector) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(d.Cfg); err != nil {
		return fmt.Errorf("core: saving config: %w", err)
	}
	if err := enc.Encode(d.Profile); err != nil {
		return fmt.Errorf("core: saving feature profile: %w", err)
	}
	var rnnBuf, aeBuf bytes.Buffer
	if err := nn.SaveGRU(&rnnBuf, d.RNN); err != nil {
		return fmt.Errorf("core: saving RNN: %w", err)
	}
	if err := nn.SaveAutoencoder(&aeBuf, d.AE); err != nil {
		return fmt.Errorf("core: saving autoencoder: %w", err)
	}
	if err := enc.Encode(rnnBuf.Bytes()); err != nil {
		return fmt.Errorf("core: framing RNN: %w", err)
	}
	if err := enc.Encode(aeBuf.Bytes()); err != nil {
		return fmt.Errorf("core: framing autoencoder: %w", err)
	}
	return nil
}

// Load reads a detector written by Save.
func Load(r io.Reader) (*Detector, error) {
	d := &Detector{}
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&d.Cfg); err != nil {
		return nil, fmt.Errorf("core: loading config: %w", err)
	}
	var prof features.Profile
	if err := dec.Decode(&prof); err != nil {
		return nil, fmt.Errorf("core: loading feature profile: %w", err)
	}
	d.Profile = &prof
	var rnnBlob, aeBlob []byte
	if err := dec.Decode(&rnnBlob); err != nil {
		return nil, fmt.Errorf("core: reading RNN frame: %w", err)
	}
	if err := dec.Decode(&aeBlob); err != nil {
		return nil, fmt.Errorf("core: reading autoencoder frame: %w", err)
	}
	var err error
	if d.RNN, err = nn.LoadGRU(bytes.NewReader(rnnBlob)); err != nil {
		return nil, err
	}
	if d.AE, err = nn.LoadAutoencoder(bytes.NewReader(aeBlob)); err != nil {
		return nil, err
	}
	return d, nil
}

// SaveFile persists the detector to path, creating parent directories.
func (d *Detector) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a detector from path.
func LoadFile(path string) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
