package core

import (
	"testing"

	"clap/internal/flow"
)

// driveLockstep scores a queue of connections through one session with
// the ragged retire/refill/compact loop the engine uses, returning each
// connection's windows (nil for window-less connections).
func driveLockstep(s *LockstepSession, k int, conns []*flow.Connection) [][][]float64 {
	wins := make([][][]float64, len(conns))
	rowConn := make([]int, k)
	rowLeft := make([]int, k)
	next := 0
	load := func(row int) bool {
		for next < len(conns) {
			ci := next
			next++
			if t := s.Load(row, conns[ci]); t > 0 {
				rowConn[row], rowLeft[row] = ci, t
				return true
			}
		}
		return false
	}
	active := 0
	for active < k && load(active) {
		active++
	}
	for active > 0 {
		s.Step(active)
		for b := 0; b < active; b++ {
			rowLeft[b]--
		}
		for b := 0; b < active; {
			if rowLeft[b] > 0 {
				b++
				continue
			}
			wins[rowConn[b]] = s.Windows(b)
			if load(b) {
				b++
				continue
			}
			active--
			if b < active {
				s.Move(b, active)
				rowConn[b], rowLeft[b] = rowConn[active], rowLeft[active]
			}
		}
	}
	return wins
}

// TestLockstepSessionMatchesStackedProfiles pins the session's output to
// StackedProfilesBatched bit for bit, windows recycled like the engine
// would, across fleet widths.
func TestLockstepSessionMatchesStackedProfiles(t *testing.T) {
	d := testDetector(t)
	if !d.LockstepSupported() {
		t.Fatal("CLAP-config detector should support lockstep")
	}
	conns := benignSet(17, 3)
	want := make([][][]float64, len(conns))
	for i, c := range conns {
		want[i] = d.StackedProfiles(c) // serial reference, independently allocated
	}
	for _, k := range []int{1, 3, 8} {
		sess := d.NewLockstepSession(k)
		got := driveLockstep(sess, k, conns)
		for ci := range conns {
			if len(got[ci]) != len(want[ci]) {
				t.Fatalf("k=%d conn %d: %d windows, want %d", k, ci, len(got[ci]), len(want[ci]))
			}
			for wi := range want[ci] {
				for j := range want[ci][wi] {
					if got[ci][wi][j] != want[ci][wi][j] {
						t.Fatalf("k=%d conn %d window %d elem %d: %v, serial %v",
							k, ci, wi, j, got[ci][wi][j], want[ci][wi][j])
					}
				}
			}
			d.RecycleStacked(got[ci])
		}
	}
}

// TestLockstepSessionGateFreeConfigs pins the fallback contract:
// configurations without gate features (Baseline #1) have no recurrence
// to batch and must decline a session.
func TestLockstepSessionGateFreeConfigs(t *testing.T) {
	d := testDetector(t)
	ablated := &Detector{Cfg: d.Cfg, Profile: d.Profile, RNN: d.RNN, AE: d.AE}
	ablated.Cfg.UseUpdateGates, ablated.Cfg.UseResetGates = false, false
	if ablated.LockstepSupported() {
		t.Fatal("gate-free config claims lockstep support")
	}
	if s := ablated.NewLockstepSession(4); s != nil {
		t.Fatal("gate-free config opened a lockstep session")
	}
}
