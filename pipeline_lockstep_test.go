package clap

// End-to-end determinism for the cross-connection lockstep path through
// the public facade: batch Runs and streams with any lockstep width must
// be bit-identical to the lockstep-free pipeline at every worker × batch
// combination, with fleet occupancy surfaced and the option validated.

import (
	"strings"
	"testing"
)

func TestPipelineLockstepBitIdentity(t *testing.T) {
	bk := pipelineBackend(t)
	det := bk.(*CLAPBackend).Detector()

	conns, _, err := suspectSource().Connections(NewEngine(1))
	if err != nil {
		t.Fatal(err)
	}
	wantScores := make([]float64, len(conns))
	for i, c := range conns {
		wantScores[i] = det.Score(c).Adversarial
	}

	for _, workers := range []int{1, 4} {
		for _, lockstep := range []int{1, 6, 24} {
			for _, batch := range []int{3, 24} {
				p, err := NewPipeline(WithBackend(bk), WithWorkers(workers),
					WithBatchSize(batch), WithLockstep(lockstep), WithWindowErrors(true))
				if err != nil {
					t.Fatal(err)
				}
				if p.Lockstep() != lockstep {
					t.Fatalf("Lockstep() = %d, want %d", p.Lockstep(), lockstep)
				}
				sum, err := p.Run(suspectSource())
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range sum.Results {
					if r.Score != wantScores[i] {
						t.Fatalf("workers=%d lockstep=%d batch=%d: conn %d score %v != serial %v",
							workers, lockstep, batch, i, r.Score, wantScores[i])
					}
				}
				if fill := p.Engine().LockstepFill(); fill <= 0 || fill > 1 {
					t.Fatalf("workers=%d lockstep=%d batch=%d: fleet fill %v outside (0, 1]",
						workers, lockstep, batch, fill)
				}
			}
		}
	}
}

// TestPipelineStreamLockstepMatchesRun: the grouped stream — workers
// draining opportunistic groups into the lockstep fleet — produces the
// same results in the same submission order as the batch Run, and
// surfaces fleet occupancy.
func TestPipelineStreamLockstepMatchesRun(t *testing.T) {
	bk := pipelineBackend(t)
	ref, err := NewPipeline(WithBackend(bk), WithThresholdFPR(0.25, TrafficGen(80, 1)))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ref.Run(suspectSource())
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		p, err := NewPipeline(WithBackend(bk), WithWorkers(workers),
			WithLockstep(6), WithThresholdFPR(0.25, TrafficGen(80, 1)))
		if err != nil {
			t.Fatal(err)
		}
		conns, _, _ := suspectSource().Connections(p.Engine())
		var streamed []Result
		s, err := p.NewStream(func(r Result) { streamed = append(streamed, r) })
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range conns {
			s.Submit(c)
		}
		s.Close()
		if len(streamed) != len(sum.Results) {
			t.Fatalf("workers=%d: streamed %d results, run produced %d", workers, len(streamed), len(sum.Results))
		}
		for i := range streamed {
			if streamed[i].Conn != conns[i] {
				t.Fatalf("workers=%d: result %d out of submission order", workers, i)
			}
			if streamed[i].Score != sum.Results[i].Score || streamed[i].Flagged != sum.Results[i].Flagged {
				t.Fatalf("workers=%d: stream result %d diverged from batch run", workers, i)
			}
		}
		if fill := s.LockstepFill(); fill <= 0 || fill > 1 {
			t.Fatalf("workers=%d: stream fleet fill %v outside (0, 1]", workers, fill)
		}
	}
}

// TestPipelineStreamLockstepProvenance: provenance capture rides the
// grouped stream — every verdict still binds its (model, generation,
// threshold) and carries its batched-pass placement.
func TestPipelineStreamLockstepProvenance(t *testing.T) {
	bk := pipelineBackend(t)
	p, err := NewPipeline(WithBackend(bk), WithLockstep(6), WithProvenance(true))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewPipeline(WithBackend(bk))
	if err != nil {
		t.Fatal(err)
	}
	refSum, err := serial.Run(suspectSource())
	if err != nil {
		t.Fatal(err)
	}
	conns, _, _ := suspectSource().Connections(p.Engine())
	var streamed []Result
	s, err := p.NewStream(func(r Result) { streamed = append(streamed, r) })
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		s.Submit(c)
	}
	s.Close()
	for i, r := range streamed {
		if r.Score != refSum.Results[i].Score {
			t.Fatalf("conn %d: provenance-armed lockstep score %v != serial %v", i, r.Score, refSum.Results[i].Score)
		}
		if r.Prov == nil {
			t.Fatalf("conn %d: no provenance record on a provenance-armed stream", i)
		}
		if r.Prov.Model != bk.Tag() {
			t.Fatalf("conn %d: provenance model %q, want %q", i, r.Prov.Model, bk.Tag())
		}
		if r.Prov.BatchID == 0 {
			t.Fatalf("conn %d: no batched-pass placement on lockstep stream", i)
		}
		if r.Prov.Score != r.Score {
			t.Fatalf("conn %d: provenance score %v != result %v", i, r.Prov.Score, r.Score)
		}
	}
}

// TestPipelineStreamLockstepHotSwap: grouped scoring partitions by pinned
// model, so a mid-stream hot swap still scores every connection wholly by
// one model — even when both models land in one drained group.
func TestPipelineStreamLockstepHotSwap(t *testing.T) {
	bk := pipelineBackend(t)
	hot, err := NewHotBackend(bk)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(WithBackend(hot), WithLockstep(6))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBackend(BackendBaseline1)
	if err != nil {
		t.Fatal(err)
	}
	cb := b2.(*CLAPBackend)
	cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs = 2, 3
	if err := b2.Train(GenerateBenign(30, 2), func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	conns := GenerateBenign(12, 55)
	var scores []float64
	s, err := p.NewStream(func(r Result) { scores = append(scores, r.Score) })
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		if i == len(conns)/2 {
			if _, err := hot.Swap(b2); err != nil {
				t.Fatal(err)
			}
		}
		s.Submit(c)
	}
	s.Close()
	if len(scores) != len(conns) {
		t.Fatalf("emitted %d results, want %d", len(scores), len(conns))
	}
	for i, c := range conns {
		s1, s2 := bk.ScoreConn(c), b2.ScoreConn(c)
		if scores[i] != s1 && scores[i] != s2 {
			t.Fatalf("conn %d score %v matches neither model (%v / %v)", i, scores[i], s1, s2)
		}
	}
}

func TestPipelineLockstepOptionValidation(t *testing.T) {
	bk := pipelineBackend(t)
	if _, err := NewPipeline(WithBackend(bk), WithLockstep(-1)); err == nil ||
		!strings.Contains(err.Error(), "lockstep width must be >= 0") {
		t.Fatalf("WithLockstep(-1): err = %v, want a width rejection", err)
	}
	p, err := NewPipeline(WithBackend(bk))
	if err != nil {
		t.Fatal(err)
	}
	if p.Lockstep() != 0 {
		t.Fatalf("default lockstep %d, want 0 (off)", p.Lockstep())
	}
	p, err = NewPipeline(WithBackend(bk), WithLockstep(0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Lockstep() != 0 {
		t.Fatalf("WithLockstep(0) gave %d, want 0", p.Lockstep())
	}
}
