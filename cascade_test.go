package clap

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

var (
	cascadeOnce sync.Once
	cascadeB1   Backend
	cascadeErr  error
)

// cascadeStage1 is the shared cheap-stage fixture: a lightly-trained
// Baseline #1 (the clap stage reuses pipelineBackend's fixture).
func cascadeStage1(t *testing.T) Backend {
	t.Helper()
	cascadeOnce.Do(func() {
		b, err := NewBackend(BackendBaseline1)
		if err != nil {
			cascadeErr = err
			return
		}
		cb := b.(*CLAPBackend)
		cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs = 2, 3
		cascadeErr = b.Train(GenerateBenign(80, 1), func(string, ...any) {})
		cascadeB1 = b
	})
	if cascadeErr != nil {
		t.Fatalf("training cascade stage 1: %v", cascadeErr)
	}
	return cascadeB1
}

// TestCascadePipelineDeterminism is the tentpole's bit-identity contract:
// across batch {1,24} × workers {1,4}, every escalated connection's score
// through the cascade pipeline equals the pure-CLAP pipeline's score for
// that connection bit for bit, and non-escalated connections reduce the
// cheap stage's series.
func TestCascadePipelineDeterminism(t *testing.T) {
	s1 := cascadeStage1(t)
	s2 := pipelineBackend(t)
	calibration := TrafficGen(60, 5)
	probe := func() Source {
		return AttackCorpus(TrafficGen(24, 42), "GFW: Injected RST Bad TCP-Checksum/MD5-Option", 0.5, 7)
	}

	// Reference: the pure second stage over the same probe corpus.
	pureP, err := NewPipeline(WithBackend(s2))
	if err != nil {
		t.Fatal(err)
	}
	pureSum, err := pureP.Run(probe())
	if err != nil {
		t.Fatal(err)
	}

	// One calibrated cascade shared across the grid: the escalation
	// threshold is part of the model, not of the pipeline geometry.
	cascade, err := NewCascade(s1, s2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	calP, err := NewPipeline(WithBackend(cascade))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := calP.Calibrate(0.2, calibration); err != nil {
		t.Fatal(err)
	}
	esc, set := cascade.Escalation()
	if !set {
		t.Fatal("calibration did not set the escalation threshold")
	}

	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 24} {
			t.Run(fmt.Sprintf("w%d_b%d", workers, batch), func(t *testing.T) {
				p, err := NewPipeline(
					WithBackend(cascade),
					WithWorkers(workers),
					WithBatchSize(batch),
				)
				if err != nil {
					t.Fatal(err)
				}
				sum, err := p.Run(probe())
				if err != nil {
					t.Fatal(err)
				}
				if len(sum.Results) != len(pureSum.Results) {
					t.Fatalf("%d results, want %d", len(sum.Results), len(pureSum.Results))
				}
				escalated := 0
				for i, r := range sum.Results {
					if s1Score := s1.ScoreConn(r.Conn); s1Score >= esc {
						escalated++
						if r.Score != pureSum.Results[i].Score {
							t.Fatalf("escalated conn %d: cascade score %v != pure clap %v",
								i, r.Score, pureSum.Results[i].Score)
						}
					} else if r.Score >= 0 {
						// Screened connections carry the cheap stage's verdict
						// as a negative margin below the escalation threshold —
						// strictly under every escalated (non-negative) clap
						// score. A non-negative score here means mis-routing.
						t.Fatalf("screened conn %d scored %v, want negative margin", i, r.Score)
					}
				}
				if escalated == 0 {
					t.Fatal("probe corpus escalated nothing; determinism not exercised")
				}
			})
		}
	}
}

// TestCascadeEndToEndFPR is the regression guard for the ThresholdAtFPR
// off-by-one composed through the cascade: calibrating both tiers from
// one corpus realizes exactly floor(target·n) false positives on that
// corpus (the old code undershot by one per tier), and a held-out benign
// set stays in a loose band around the target.
func TestCascadeEndToEndFPR(t *testing.T) {
	s1 := cascadeStage1(t)
	s2 := pipelineBackend(t)
	const target = 0.1
	calSeed, heldSeed := int64(5), int64(1234)
	calN := 60

	p, err := NewPipeline(
		WithCascade(s1, s2, 0.3),
		WithThresholdFPR(target, TrafficGen(calN, calSeed)),
	)
	if err != nil {
		t.Fatal(err)
	}
	cascade := p.Backend().(*CascadeBackend)

	// Re-running the calibration corpus through the calibrated pipeline
	// must flag exactly the budget.
	sum, err := p.Run(TrafficGen(calN, calSeed))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.ThresholdSet {
		t.Fatal("calibrated run did not mark the threshold set")
	}
	wantFlagged := int(target * float64(calN))
	if sum.Flagged != wantFlagged {
		t.Fatalf("calibration corpus flagged %d/%d, want exactly %d (floor(%.2g·n))",
			sum.Flagged, calN, wantFlagged, target)
	}
	// The escalated benign fraction respects the escalate-FPR budget too.
	if _, set := cascade.Escalation(); !set {
		t.Fatal("escalation threshold not installed")
	}
	evaluated, escalated := cascade.EscalationCounts()
	if evaluated == 0 {
		t.Fatal("escalation counters untouched")
	}
	if frac := float64(escalated) / float64(evaluated); frac > 0.3+1e-9 {
		t.Fatalf("%.2f of calibration-corpus traffic escalated, budget 0.3", frac)
	}

	// Held-out benign set: same generator family, fresh seed. The realized
	// FPR is deterministic for these seeds; band it loosely around target.
	held, err := p.Run(TrafficGen(100, heldSeed))
	if err != nil {
		t.Fatal(err)
	}
	realized := float64(held.Flagged) / float64(len(held.Results))
	if realized > 3*target {
		t.Fatalf("held-out FPR %.3f blows past target %.2f", realized, target)
	}
}

// TestCascadeCalibrationRejectsLooseFPR: a detection FPR target looser
// than the escalation budget would put the end-to-end threshold among
// the screened connections' negative margins — traffic the verdict
// stage never scored. Calibration must fail with the cause (budget vs
// target), not a bare negative-threshold validation error.
func TestCascadeCalibrationRejectsLooseFPR(t *testing.T) {
	s1 := cascadeStage1(t)
	s2 := pipelineBackend(t)
	p, err := NewPipeline(WithCascade(s1, s2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Calibrate(0.3, TrafficGen(60, 5))
	if err == nil {
		t.Fatal("calibrating at FPR 0.3 with escalation budget 0.05 should fail")
	}
	if !strings.Contains(err.Error(), "escalation budget") {
		t.Fatalf("error should name the escalation budget as the cause, got: %v", err)
	}
	// The same target inside the budget calibrates fine.
	if err := p.Backend().(*CascadeBackend).SetEscalateFPR(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Calibrate(0.3, TrafficGen(60, 5)); err != nil {
		t.Fatalf("calibrating inside the escalation budget: %v", err)
	}
}

// TestCascadeCalibrationResetsCounters: the calibration pass scores the
// benign corpus through the cascade; its escalation counters must reflect
// served traffic only.
func TestCascadeCalibrationResetsCounters(t *testing.T) {
	s1 := cascadeStage1(t)
	s2 := pipelineBackend(t)
	cascade, err := NewCascade(s1, s2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(WithBackend(cascade))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Calibrate(0.2, TrafficGen(40, 5)); err != nil {
		t.Fatal(err)
	}
	if evaluated, _ := cascade.EscalationCounts(); evaluated != 0 {
		t.Fatalf("calibration left %d evaluations on the counters", evaluated)
	}
}

// TestWithCascadeRejectsBadFPR: option-surface validation.
func TestWithCascadeRejectsBadFPR(t *testing.T) {
	s1 := cascadeStage1(t)
	s2 := pipelineBackend(t)
	if _, err := NewPipeline(WithCascade(s1, s2, 0)); err == nil {
		t.Fatal("WithCascade(.., 0) should fail NewPipeline")
	}
	if _, err := NewPipeline(WithCascade(s1, nil, 0.1)); err == nil {
		t.Fatal("WithCascade with nil stage should fail NewPipeline")
	}
}
