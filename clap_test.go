package clap

import (
	"bytes"
	"math/rand"
	"testing"
)

// The root-package tests exercise the public facade end to end the way the
// README's quickstart does.

func TestPublicAPIQuickstartFlow(t *testing.T) {
	benign := GenerateBenign(50, 1)
	if len(benign) != 50 {
		t.Fatalf("GenerateBenign returned %d connections", len(benign))
	}
	cfg := DefaultConfig()
	cfg.RNNEpochs, cfg.AEEpochs = 3, 3
	det, err := Train(benign, cfg, nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	// Inject the motivating example into a fresh connection and detect it.
	carrier := GenerateBenign(30, 99)
	strategy, ok := AttackByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	if !ok {
		t.Fatal("strategy missing")
	}
	rng := rand.New(rand.NewSource(7))
	var benignScores, advScores []float64
	for _, c := range carrier {
		benignScores = append(benignScores, det.Score(c).Adversarial)
		cc := c.Clone()
		if strategy.Apply(cc, rng) {
			advScores = append(advScores, det.Score(cc).Adversarial)
		}
	}
	if len(advScores) < 5 {
		t.Fatalf("attack applied only %d times", len(advScores))
	}
	if auc := AUC(benignScores, advScores); auc < 0.85 {
		t.Errorf("quickstart AUC = %.3f, want >= 0.85", auc)
	}
	th := ThresholdAtFPR(benignScores, 0.05)
	fp := 0
	for _, s := range benignScores {
		if s >= th {
			fp++
		}
	}
	if fp > len(benignScores)/10 {
		t.Errorf("threshold leaks %d/%d false positives", fp, len(benignScores))
	}
}

func TestPublicPCAPRoundTrip(t *testing.T) {
	conns := GenerateBenign(20, 3)
	var buf bytes.Buffer
	if err := WritePCAP(&buf, conns); err != nil {
		t.Fatalf("WritePCAP: %v", err)
	}
	got, skipped, err := ReadPCAP(&buf)
	if err != nil {
		t.Fatalf("ReadPCAP: %v", err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if len(got) < len(conns) {
		t.Errorf("read %d connections, wrote %d", len(got), len(conns))
	}
}

func TestPublicAttackCorpus(t *testing.T) {
	if n := len(Attacks()); n != 73 {
		t.Fatalf("corpus size = %d, want 73", n)
	}
	if _, ok := AttackByName("definitely not real"); ok {
		t.Error("AttackByName matched nonsense")
	}
}

func TestPublicEvasionCheck(t *testing.T) {
	carrier := GenerateBenign(40, 5)
	strategy, _ := AttackByName("Injected RST / Low TTL")
	rng := rand.New(rand.NewSource(11))
	for _, c := range carrier {
		cc := c.Clone()
		if !strategy.Apply(cc, rng) {
			continue
		}
		results := CheckEvasion(cc)
		if len(results) != 3 {
			t.Fatalf("CheckEvasion returned %d results", len(results))
		}
		diverged := false
		for _, r := range results {
			diverged = diverged || r.Diverged()
		}
		if !diverged {
			t.Error("low-TTL RST should diverge on at least one DPI model")
		}
		return
	}
	t.Fatal("strategy never applied")
}

func TestPublicPersistence(t *testing.T) {
	cfg := Baseline1Config()
	cfg.RNNEpochs, cfg.AEEpochs = 2, 2
	det, err := Train(GenerateBenign(25, 9), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err != nil {
		t.Fatal(err)
	}
}
