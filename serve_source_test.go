package clap

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"clap/internal/flow"
	"clap/internal/pcapio"
)

// fastLive keeps live-source tests snappy.
var fastLive = LiveConfig{Poll: 5 * time.Millisecond, IdleFlush: 50 * time.Millisecond, MaxPackets: 512}

// collectServe drains a ServeSource until it returns, collecting
// everything it delivers.
func collectServe(t *testing.T, src ServeSource, ctx context.Context) (conns []*Connection, skipped int) {
	t.Helper()
	ch := make(chan *Connection, 1024)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		skipped, err = src.Stream(ctx, func(c *Connection) { ch <- c })
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("source did not finish")
	}
	if err != nil {
		t.Fatalf("source %s: %v", src.Name(), err)
	}
	close(ch)
	for c := range ch {
		conns = append(conns, c)
	}
	return conns, skipped
}

// TestTailPCAPFollowsGrowingFile appends a capture to a file in stages —
// including the file not existing at open time and a record split across
// writes — and the tail source must deliver every connection.
func TestTailPCAPFollowsGrowingFile(t *testing.T) {
	want := GenerateBenign(6, 41)
	var whole []byte
	{
		f, err := os.CreateTemp(t.TempDir(), "whole-*.pcap")
		if err != nil {
			t.Fatal(err)
		}
		if err := WritePCAP(f, want); err != nil {
			t.Fatal(err)
		}
		f.Close()
		whole, err = os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join(t.TempDir(), "grow.pcap")
	src := TailPCAP(path, fastLive)
	ctx, cancel := context.WithCancel(context.Background())

	got := make(chan *Connection, 64)
	done := make(chan error, 1)
	go func() {
		_, err := src.Stream(ctx, func(c *Connection) { got <- c })
		done <- err
	}()

	// Write the capture in uneven chunks with pauses, splitting records
	// mid-byte; the tailer must ride through every partial state.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(whole); {
		n := 700
		if off+n > len(whole) {
			n = len(whole) - off
		}
		if _, err := f.Write(whole[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
		time.Sleep(10 * time.Millisecond)
	}
	f.Close()

	// Collect until every connection arrived (idle flush emits the tail).
	var conns []*Connection
	deadline := time.After(20 * time.Second)
	for len(conns) < len(want) {
		select {
		case c := <-got:
			conns = append(conns, c)
		case <-deadline:
			t.Fatalf("tail delivered %d connections, want %d", len(conns), len(want))
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("tail stream: %v", err)
	}

	wantPkts := 0
	for _, c := range want {
		wantPkts += c.Len()
	}
	gotPkts := 0
	for _, c := range conns {
		gotPkts += c.Len()
	}
	if gotPkts != wantPkts {
		t.Fatalf("tail delivered %d packets, capture had %d", gotPkts, wantPkts)
	}
}

// TestFollowPCAPFromPipe streams a capture through an io.Pipe — the
// stdin/named-pipe deployment — and must deliver the same connections the
// batch reader assembles.
func TestFollowPCAPFromPipe(t *testing.T) {
	want := GenerateBenign(8, 17)
	pr, pw := io.Pipe()
	go func() {
		WritePCAP(pw, want)
		pw.Close()
	}()

	src := FollowPCAP("pipe", pr, fastLive)
	conns, skipped := collectServe(t, src, context.Background())
	if skipped != 0 {
		t.Errorf("clean capture reported %d skipped", skipped)
	}
	if len(conns) != len(want) {
		t.Fatalf("pipe delivered %d connections, want %d", len(conns), len(want))
	}
	for i := range want {
		if conns[i].Key != want[i].Key {
			t.Fatalf("conn %d: key %v != %v", i, conns[i].Key, want[i].Key)
		}
	}
}

// TestFollowPCAPCountsSkipped: undecodable records surface in the skip
// count instead of vanishing.
func TestFollowPCAPCountsSkipped(t *testing.T) {
	conns := GenerateBenign(3, 5)
	pr, pw := io.Pipe()
	go func() {
		w := pcapio.NewWriter(pw, pcapio.LinkTypeRaw)
		for _, p := range flow.Flatten(conns) {
			w.WritePacket(p)
		}
		// A structurally undecodable record.
		w.WriteRaw(time.Unix(0, 0), []byte{0xde, 0xad, 0xbe, 0xef}, 4)
		w.Flush()
		pw.Close()
	}()
	got, skipped := collectServe(t, FollowPCAP("pipe", pr, fastLive), context.Background())
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(got) != len(conns) {
		t.Errorf("delivered %d connections, want %d", len(got), len(conns))
	}
}

// TestSoakDeterministic: same seed, same stream — connections, order and
// attack plan.
func TestSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{Connections: 150, Seed: 3, AttackFraction: 0.4, Batch: 40}
	a, _ := collectServe(t, Soak(cfg), context.Background())
	b, _ := collectServe(t, Soak(cfg), context.Background())
	if len(a) != 150 || len(b) != 150 {
		t.Fatalf("soak delivered %d/%d connections, want 150", len(a), len(b))
	}
	attacks := 0
	for i := range a {
		if a[i].Key != b[i].Key || a[i].AttackName != b[i].AttackName || a[i].Len() != b[i].Len() {
			t.Fatalf("soak diverged at connection %d", i)
		}
		if a[i].AttackName != "" {
			attacks++
		}
	}
	if attacks == 0 {
		t.Fatal("soak with AttackFraction 0.4 planted no attacks")
	}
}

// TestSoakCancellation: an unbounded soak stops at context cancellation.
func TestSoakCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		Soak(SoakConfig{Seed: 1, Batch: 8}).Stream(ctx, func(*Connection) {
			n++
			if n == 20 {
				cancel()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("unbounded soak did not stop on cancellation")
	}
	if n < 20 {
		t.Fatalf("soak delivered %d connections before cancel", n)
	}
}

// TestReplaySource: a batch source replayed connection by connection.
func TestReplaySource(t *testing.T) {
	conns, skipped := collectServe(t, Replay("replay", TrafficGen(9, 4)), context.Background())
	if skipped != 0 || len(conns) != 9 {
		t.Fatalf("replay delivered %d connections (%d skipped), want 9/0", len(conns), skipped)
	}
}

// TestSetIdleFlushOverridesConstruction: the IdleFlushable knob replaces
// the idle window a live source was built with. A connection sitting in a
// still-open pipe is only ever emitted by the idle flush; with the
// construction-time window at ten minutes and the override at tens of
// milliseconds, delivery within seconds proves the override took effect.
func TestSetIdleFlushOverridesConstruction(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func(path string, r io.Reader, cfg LiveConfig) ServeSource
	}{
		{"follow", func(_ string, r io.Reader, cfg LiveConfig) ServeSource { return FollowPCAP("pipe", r, cfg) }},
		{"tail", func(path string, _ io.Reader, cfg LiveConfig) ServeSource { return TailPCAP(path, cfg) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			want := GenerateBenign(1, 7)
			path := filepath.Join(t.TempDir(), "live.pcap")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := WritePCAP(f, want); err != nil {
				t.Fatal(err)
			}
			f.Close() // the tail source sees a quiet file that never EOFs logically
			pr, pw := io.Pipe()
			go func() {
				data, _ := os.ReadFile(path)
				pw.Write(data)
				// The pipe stays open: no EOF, so only idle flush can emit.
			}()
			defer pw.Close()

			src := mk.build(path, pr, LiveConfig{Poll: 5 * time.Millisecond, IdleFlush: 10 * time.Minute})
			fl, ok := src.(IdleFlushable)
			if !ok {
				t.Fatalf("%T does not implement IdleFlushable", src)
			}
			fl.SetIdleFlush(40 * time.Millisecond)
			fl.SetIdleFlush(0) // no-op: zero/negative values keep the current window

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			got := make(chan *Connection, 4)
			go src.Stream(ctx, func(c *Connection) { got <- c })
			select {
			case c := <-got:
				if c.Key != want[0].Key {
					t.Fatalf("idle flush delivered %v, want %v", c.Key, want[0].Key)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("connection never idle-flushed: SetIdleFlush did not take effect")
			}
		})
	}
}
