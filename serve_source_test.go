package clap

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/pcapio"
)

// fastLive keeps live-source tests snappy.
var fastLive = LiveConfig{Poll: 5 * time.Millisecond, IdleFlush: 50 * time.Millisecond, MaxPackets: 512}

// collectServe drains a ServeSource until it returns, collecting
// everything it delivers.
func collectServe(t *testing.T, src ServeSource, ctx context.Context) (conns []*Connection, skipped int) {
	t.Helper()
	ch := make(chan *Connection, 1024)
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		skipped, err = src.Stream(ctx, func(c *Connection) { ch <- c })
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("source did not finish")
	}
	if err != nil {
		t.Fatalf("source %s: %v", src.Name(), err)
	}
	close(ch)
	for c := range ch {
		conns = append(conns, c)
	}
	return conns, skipped
}

// TestTailPCAPFollowsGrowingFile appends a capture to a file in stages —
// including the file not existing at open time and a record split across
// writes — and the tail source must deliver every connection.
func TestTailPCAPFollowsGrowingFile(t *testing.T) {
	want := GenerateBenign(6, 41)
	var whole []byte
	{
		f, err := os.CreateTemp(t.TempDir(), "whole-*.pcap")
		if err != nil {
			t.Fatal(err)
		}
		if err := WritePCAP(f, want); err != nil {
			t.Fatal(err)
		}
		f.Close()
		whole, err = os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join(t.TempDir(), "grow.pcap")
	src := TailPCAP(path, fastLive)
	ctx, cancel := context.WithCancel(context.Background())

	got := make(chan *Connection, 64)
	done := make(chan error, 1)
	go func() {
		_, err := src.Stream(ctx, func(c *Connection) { got <- c })
		done <- err
	}()

	// Write the capture in uneven chunks with pauses, splitting records
	// mid-byte; the tailer must ride through every partial state.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(whole); {
		n := 700
		if off+n > len(whole) {
			n = len(whole) - off
		}
		if _, err := f.Write(whole[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
		time.Sleep(10 * time.Millisecond)
	}
	f.Close()

	// Collect until every connection arrived (idle flush emits the tail).
	var conns []*Connection
	deadline := time.After(20 * time.Second)
	for len(conns) < len(want) {
		select {
		case c := <-got:
			conns = append(conns, c)
		case <-deadline:
			t.Fatalf("tail delivered %d connections, want %d", len(conns), len(want))
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("tail stream: %v", err)
	}

	wantPkts := 0
	for _, c := range want {
		wantPkts += c.Len()
	}
	gotPkts := 0
	for _, c := range conns {
		gotPkts += c.Len()
	}
	if gotPkts != wantPkts {
		t.Fatalf("tail delivered %d packets, capture had %d", gotPkts, wantPkts)
	}
}

// TestFollowPCAPFromPipe streams a capture through an io.Pipe — the
// stdin/named-pipe deployment — and must deliver the same connections the
// batch reader assembles.
func TestFollowPCAPFromPipe(t *testing.T) {
	want := GenerateBenign(8, 17)
	pr, pw := io.Pipe()
	go func() {
		WritePCAP(pw, want)
		pw.Close()
	}()

	src := FollowPCAP("pipe", pr, fastLive)
	conns, skipped := collectServe(t, src, context.Background())
	if skipped != 0 {
		t.Errorf("clean capture reported %d skipped", skipped)
	}
	if len(conns) != len(want) {
		t.Fatalf("pipe delivered %d connections, want %d", len(conns), len(want))
	}
	for i := range want {
		if conns[i].Key != want[i].Key {
			t.Fatalf("conn %d: key %v != %v", i, conns[i].Key, want[i].Key)
		}
	}
}

// TestFollowPCAPCountsSkipped: undecodable records surface in the skip
// count instead of vanishing.
func TestFollowPCAPCountsSkipped(t *testing.T) {
	conns := GenerateBenign(3, 5)
	pr, pw := io.Pipe()
	go func() {
		w := pcapio.NewWriter(pw, pcapio.LinkTypeRaw)
		for _, p := range flow.Flatten(conns) {
			w.WritePacket(p)
		}
		// A structurally undecodable record.
		w.WriteRaw(time.Unix(0, 0), []byte{0xde, 0xad, 0xbe, 0xef}, 4)
		w.Flush()
		pw.Close()
	}()
	got, skipped := collectServe(t, FollowPCAP("pipe", pr, fastLive), context.Background())
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(got) != len(conns) {
		t.Errorf("delivered %d connections, want %d", len(got), len(conns))
	}
}

// TestSoakDeterministic: same seed, same stream — connections, order and
// attack plan.
func TestSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{Connections: 150, Seed: 3, AttackFraction: 0.4, Batch: 40}
	a, _ := collectServe(t, Soak(cfg), context.Background())
	b, _ := collectServe(t, Soak(cfg), context.Background())
	if len(a) != 150 || len(b) != 150 {
		t.Fatalf("soak delivered %d/%d connections, want 150", len(a), len(b))
	}
	attacks := 0
	for i := range a {
		if a[i].Key != b[i].Key || a[i].AttackName != b[i].AttackName || a[i].Len() != b[i].Len() {
			t.Fatalf("soak diverged at connection %d", i)
		}
		if a[i].AttackName != "" {
			attacks++
		}
	}
	if attacks == 0 {
		t.Fatal("soak with AttackFraction 0.4 planted no attacks")
	}
}

// TestSoakCancellation: an unbounded soak stops at context cancellation.
func TestSoakCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		Soak(SoakConfig{Seed: 1, Batch: 8}).Stream(ctx, func(*Connection) {
			n++
			if n == 20 {
				cancel()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("unbounded soak did not stop on cancellation")
	}
	if n < 20 {
		t.Fatalf("soak delivered %d connections before cancel", n)
	}
}

// TestReplaySource: a batch source replayed connection by connection.
func TestReplaySource(t *testing.T) {
	conns, skipped := collectServe(t, Replay("replay", TrafficGen(9, 4)), context.Background())
	if skipped != 0 || len(conns) != 9 {
		t.Fatalf("replay delivered %d connections (%d skipped), want 9/0", len(conns), skipped)
	}
}

// TestSetIdleFlushOverridesConstruction: the IdleFlushable knob replaces
// the idle window a live source was built with. A connection sitting in a
// still-open pipe is only ever emitted by the idle flush; with the
// construction-time window at ten minutes and the override at tens of
// milliseconds, delivery within seconds proves the override took effect.
func TestSetIdleFlushOverridesConstruction(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func(path string, r io.Reader, cfg LiveConfig) ServeSource
	}{
		{"follow", func(_ string, r io.Reader, cfg LiveConfig) ServeSource { return FollowPCAP("pipe", r, cfg) }},
		{"tail", func(path string, _ io.Reader, cfg LiveConfig) ServeSource { return TailPCAP(path, cfg) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			want := GenerateBenign(1, 7)
			path := filepath.Join(t.TempDir(), "live.pcap")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := WritePCAP(f, want); err != nil {
				t.Fatal(err)
			}
			f.Close() // the tail source sees a quiet file that never EOFs logically
			pr, pw := io.Pipe()
			go func() {
				data, _ := os.ReadFile(path)
				pw.Write(data)
				// The pipe stays open: no EOF, so only idle flush can emit.
			}()
			defer pw.Close()

			src := mk.build(path, pr, LiveConfig{Poll: 5 * time.Millisecond, IdleFlush: 10 * time.Minute})
			fl, ok := src.(IdleFlushable)
			if !ok {
				t.Fatalf("%T does not implement IdleFlushable", src)
			}
			fl.SetIdleFlush(40 * time.Millisecond)
			fl.SetIdleFlush(0) // no-op: zero/negative values keep the current window

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			got := make(chan *Connection, 4)
			go src.Stream(ctx, func(c *Connection) { got <- c })
			select {
			case c := <-got:
				if c.Key != want[0].Key {
					t.Fatalf("idle flush delivered %v, want %v", c.Key, want[0].Key)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("connection never idle-flushed: SetIdleFlush did not take effect")
			}
		})
	}
}

// TestLiveConfigMaxPacketsSentinel pins the sentinel contract: 0 selects
// the 512 default, negative means unbounded (resolved to the assembler's
// honest 0), positive passes through. Pre-fix, "unbounded" was
// unexpressible: the docs promised 0 meant unbounded while withDefaults
// rewrote 0 to 512 and let -1 leak into the assembler.
func TestLiveConfigMaxPacketsSentinel(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 512},
		{-1, 0},
		{7, 7},
	} {
		if got := (LiveConfig{MaxPackets: tc.in}).withDefaults().MaxPackets; got != tc.want {
			t.Errorf("withDefaults(MaxPackets: %d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// longConnCapture writes one connection of n packets as a raw-IP pcap.
func longConnCapture(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf, pcapio.LinkTypeRaw)
	c := [4]byte{10, 0, 0, 9}
	s := [4]byte{192, 0, 2, 9}
	ts := time.Unix(1700000000, 0)
	write := func(p *packet.Packet) {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	write(packet.NewBuilder(c, s, 3001, 80).Flags(packet.SYN).Time(ts).Build())
	write(packet.NewBuilder(s, c, 80, 3001).Flags(packet.SYN | packet.ACK).Time(ts.Add(time.Millisecond)).Build())
	for i := 0; i < n-2; i++ {
		write(packet.NewBuilder(c, s, 3001, 80).Flags(packet.ACK | packet.PSH).
			Seq(uint32(100 + i*64)).PayloadLen(64).
			Time(ts.Add(time.Duration(i+2) * time.Millisecond)).Build())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMaxPacketsUnbounded is the behavioural half of the sentinel pin: a
// 700-packet flow must arrive as one connection under MaxPackets -1 and
// be segmented under the 512 default.
func TestMaxPacketsUnbounded(t *testing.T) {
	const pkts = 700
	capture := longConnCapture(t, pkts)

	cfg := fastLive
	cfg.MaxPackets = -1
	conns, _ := collectServe(t, FollowPCAP("pipe", bytes.NewReader(capture), cfg), context.Background())
	if len(conns) != 1 || conns[0].Len() != pkts {
		t.Fatalf("unbounded: got %d connections (first %d packets), want 1 connection of %d",
			len(conns), conns[0].Len(), pkts)
	}

	cfg.MaxPackets = 0 // default 512
	conns, _ = collectServe(t, FollowPCAP("pipe", bytes.NewReader(capture), cfg), context.Background())
	if len(conns) != 2 {
		t.Fatalf("default budget: got %d connections, want 2 segments", len(conns))
	}
	if got := conns[0].Len() + conns[1].Len(); got != pkts {
		t.Fatalf("segments carry %d packets, want %d", got, pkts)
	}
}

// TestSoakRateTooHigh: a rate that rounds to a sub-nanosecond interval
// must be rejected with an error, not panic inside time.NewTicker.
func TestSoakRateTooHigh(t *testing.T) {
	_, err := Soak(SoakConfig{Connections: 4, Rate: 2e9}).Stream(context.Background(), func(*Connection) {})
	if err == nil {
		t.Fatal("Soak with Rate 2e9 should fail, not run (pre-fix: panic in time.NewTicker)")
	}
}

// failAfterReader serves its payload and then fails with a permanent
// (non-EOF) error — a capture feed dying mid-record.
type failAfterReader struct {
	data []byte
	err  error
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestStreamMidRecordError: when the feed dies mid-record, the ingest
// loop must flush everything assembled so far to the deliver callback
// and surface the error — no partial-assembly packets may be lost.
func TestStreamMidRecordError(t *testing.T) {
	want := GenerateBenign(3, 23)
	var buf bytes.Buffer
	if err := WritePCAP(&buf, want); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	boom := errors.New("capture feed died")
	// Cut inside the last record's body.
	r := &failAfterReader{data: whole[:len(whole)-7], err: boom}

	var got []*Connection
	_, err := FollowPCAP("dying", r, fastLive).Stream(context.Background(),
		func(c *Connection) { got = append(got, c) })
	if !errors.Is(err, boom) {
		t.Fatalf("Stream error = %v, want the feed's error", err)
	}
	if len(got) != len(want) {
		t.Fatalf("flushed %d connections after mid-record error, want %d", len(got), len(want))
	}
	wantPkts := 0
	for _, c := range want {
		wantPkts += c.Len()
	}
	gotPkts := 0
	for _, c := range got {
		gotPkts += c.Len()
	}
	if gotPkts != wantPkts-1 {
		// Everything but the truncated final record must have been
		// assembled and flushed.
		t.Fatalf("flushed %d packets, want %d (capture minus the truncated record)", gotPkts, wantPkts-1)
	}
}

// TestTailPCAPRotation: a tailed capture is logrotated (renamed away and
// replaced) and, separately, truncated in place mid-stream. Pre-fix the
// tailer kept polling the stale offset forever; now it must notice,)
// resync to the new global header, and deliver the second capture's
// connections too.
func TestTailPCAPRotation(t *testing.T) {
	for _, mode := range []string{"rename", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			first := GenerateBenign(4, 61)
			second := GenerateBenign(3, 62)
			dir := t.TempDir()
			path := filepath.Join(dir, "rotating.pcap")

			writeCapture := func(p string, conns []*Connection) {
				f, err := os.Create(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := WritePCAP(f, conns); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}
			writeCapture(path, first)

			src := TailPCAP(path, fastLive)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			got := make(chan *Connection, 64)
			done := make(chan error, 1)
			go func() {
				_, err := src.Stream(ctx, func(c *Connection) { got <- c })
				done <- err
			}()

			collect := func(n int, stage string) []*Connection {
				var conns []*Connection
				deadline := time.After(20 * time.Second)
				for len(conns) < n {
					select {
					case c := <-got:
						conns = append(conns, c)
					case <-deadline:
						t.Fatalf("%s: delivered %d connections, want %d", stage, len(conns), n)
					}
				}
				return conns
			}
			collect(len(first), "before rotation")

			switch mode {
			case "rename":
				if err := os.Rename(path, path+".1"); err != nil {
					t.Fatal(err)
				}
				writeCapture(path, second)
			case "truncate":
				if err := os.Truncate(path, 0); err != nil {
					t.Fatal(err)
				}
				// Shrink detection is poll-based (as in tail -F): give the
				// tailer a few poll cycles to observe size < offset before
				// the file regrows past it.
				time.Sleep(20 * fastLive.Poll)
				f, err := os.OpenFile(path, os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := WritePCAP(f, second); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			after := collect(len(second), "after rotation")
			for i := range second {
				if after[i].Key != second[i].Key {
					t.Fatalf("post-rotation conn %d: key %v != %v", i, after[i].Key, second[i].Key)
				}
			}
			cancel()
			if err := <-done; err != nil {
				t.Fatalf("tail stream: %v", err)
			}
		})
	}
}
