package clap

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"clap/internal/attacks"
	"clap/internal/flow"
	"clap/internal/pcapio"
)

// Source produces the connection corpus a Pipeline scores: a pcap file or
// stream, synthetic benign traffic, an attack-injected corpus, or an
// in-memory slice. Implementations assemble through the supplied engine so
// large captures use sharded parallel assembly; eng may be nil, in which
// case a machine-sized engine is used.
type Source interface {
	// Connections returns the assembled corpus in capture order. skipped
	// counts records the source could not decode (undecodable or non-TCP
	// pcap records); surface it — a silently truncated capture is
	// invisible otherwise.
	Connections(eng *Engine) (conns []*Connection, skipped int, err error)
}

func engineOrDefault(eng *Engine) *Engine {
	if eng == nil {
		return NewEngine(0)
	}
	return eng
}

// PCAPFile reads a capture file from disk.
func PCAPFile(path string) Source { return pcapFileSource{path: path} }

type pcapFileSource struct{ path string }

func (s pcapFileSource) Connections(eng *Engine) ([]*Connection, int, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	pkts, skipped, err := pcapio.ReadPackets(f)
	if err != nil {
		return nil, skipped, fmt.Errorf("reading %s: %w", s.path, err)
	}
	return engineOrDefault(eng).Assemble(pkts), skipped, nil
}

// PCAPStream reads a capture from an io.Reader (a socket, a pipe from a
// live capture process, a decompressor).
func PCAPStream(r io.Reader) Source { return pcapStreamSource{r: r} }

type pcapStreamSource struct{ r io.Reader }

func (s pcapStreamSource) Connections(eng *Engine) ([]*Connection, int, error) {
	pkts, skipped, err := pcapio.ReadPackets(s.r)
	if err != nil {
		return nil, skipped, err
	}
	return engineOrDefault(eng).Assemble(pkts), skipped, nil
}

// TrafficGen synthesizes n benign backbone-style connections with a
// deterministic seed — the stand-in for a MAWI capture (DESIGN.md §1).
func TrafficGen(n int, seed int64) Source { return trafficGenSource{n: n, seed: seed} }

type trafficGenSource struct {
	n    int
	seed int64
}

func (s trafficGenSource) Connections(*Engine) ([]*Connection, int, error) {
	return GenerateBenign(s.n, s.seed), 0, nil
}

// Conns serves an in-memory corpus as-is.
func Conns(conns ...*Connection) Source { return connsSource(conns) }

type connsSource []*Connection

func (s connsSource) Connections(*Engine) ([]*Connection, int, error) { return s, 0, nil }

// AttackCorpus wraps a base source and injects one evasion strategy into
// the given fraction of eligible connections (in place, marking them
// adversarial) — the attack-injected corpus the evaluation scores.
func AttackCorpus(base Source, strategy string, fraction float64, seed int64) Source {
	return attackSource{base: base, strategy: strategy, fraction: fraction, seed: seed}
}

type attackSource struct {
	base     Source
	strategy string
	fraction float64
	seed     int64
}

func (s attackSource) Connections(eng *Engine) ([]*Connection, int, error) {
	strategy, ok := attacks.ByName(s.strategy)
	if !ok {
		return nil, 0, fmt.Errorf("unknown strategy %q", s.strategy)
	}
	conns, skipped, err := s.base.Connections(eng)
	if err != nil {
		return nil, skipped, err
	}
	rng := rand.New(rand.NewSource(s.seed))
	for _, c := range conns {
		if rng.Float64() > s.fraction {
			continue
		}
		if strategy.Apply(c, rng) {
			c.AttackName = strategy.Name
		}
	}
	return conns, skipped, nil
}

// WritePCAPFile writes connections to path as a classic pcap capture;
// raw selects LINKTYPE_RAW framing instead of Ethernet.
func WritePCAPFile(path string, conns []*Connection, raw bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	linkType := uint32(pcapio.LinkTypeEthernet)
	if raw {
		linkType = pcapio.LinkTypeRaw
	}
	w := pcapio.NewWriter(f, linkType)
	for _, p := range flow.Flatten(conns) {
		if err := w.WritePacket(p); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
