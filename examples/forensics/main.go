// Forensics: the Pipeline as an offline analysis tool (§3.2) — run a
// capture containing a handful of different evasion attempts through a
// score-only pipeline, rank connections by adversarial score, and pinpoint
// the injected packets with the localized windows each Result carries.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"clap"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training CLAP on benign traffic...")
	bk, err := clap.NewBackend(clap.BackendCLAP)
	if err != nil {
		log.Fatal(err)
	}
	cb := bk.(*clap.CLAPBackend)
	cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs, cb.Cfg.AERestarts = 8, 35, 2
	train := clap.GenerateBenign(200, 1)
	if err := bk.Train(train, func(string, ...any) {}); err != nil {
		log.Fatal(err)
	}

	// Build a mixed capture: mostly benign, a few different attacks.
	capture := clap.GenerateBenign(40, 77)
	rng := rand.New(rand.NewSource(3))
	injected := 0
	for i, name := range []string{
		"Snort: Injected RST Pure",
		"Bad TCP Checksum (Max)",
		"Invalid Data-Offset / Bad TCP Checksum",
		"Zeek: Data Packet (ACK) Bad SEQ",
	} {
		strategy, ok := clap.AttackByName(name)
		if !ok {
			log.Fatalf("unknown strategy %q", name)
		}
		// Try to plant each attack in one of the capture's connections.
		for j := i * 7; j < len(capture); j++ {
			if strategy.Apply(capture[j], rng) {
				capture[j].AttackName = name
				injected++
				break
			}
		}
	}
	fmt.Printf("capture: %d connections, %d with hidden evasion attempts\n\n", len(capture), injected)

	// Score-only pipeline run: no threshold, Top-3 localization, full
	// error series kept for the analyst view.
	pipe, err := clap.NewPipeline(
		clap.WithBackend(bk),
		clap.WithTopN(3),
		clap.WithWindowErrors(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := pipe.Run(clap.Conns(capture...))
	if err != nil {
		log.Fatal(err)
	}

	// Rank by adversarial score.
	rs := append([]clap.Result(nil), sum.Results...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Score > rs[j].Score })

	fmt.Println("top suspicious connections (analyst view):")
	hits := 0
	for i, r := range rs[:8] {
		truth := "benign"
		if r.Conn.AttackName != "" {
			truth = r.Conn.AttackName
			hits++
		}
		fmt.Printf("%d. score=%.5f %-44s truth: %s\n", i+1, r.Score, r.Conn.Key, truth)
		if r.Conn.AttackName == "" {
			continue
		}
		// Localize the attack vector within the connection.
		fmt.Printf("   localized windows %v; ground-truth adversarial packets %v\n",
			r.TopWindows, r.Conn.AdvIdx)
		if w := r.PeakWindow; w >= 0 {
			end := w + sum.WindowSpan
			if end > r.Conn.Len() {
				end = r.Conn.Len()
			}
			for p := w; p < end; p++ {
				fmt.Printf("   [%d] %v\n", p, r.Conn.Packets[p])
			}
		}
	}
	fmt.Printf("\n%d/%d attacks surfaced in the top 8 ranks\n", hits, injected)
}
