// Forensics: CLAP as an offline analysis tool (§3.2) — load a capture
// containing a handful of different evasion attempts, rank connections by
// adversarial score, and pinpoint the injected packets with
// localize-and-estimate.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"clap"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training CLAP on benign traffic...")
	cfg := clap.DefaultConfig()
	cfg.RNNEpochs, cfg.AEEpochs, cfg.AERestarts = 8, 35, 2
	det, err := clap.Train(clap.GenerateBenign(200, 1), cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Build a mixed capture: mostly benign, a few different attacks.
	capture := clap.GenerateBenign(40, 77)
	rng := rand.New(rand.NewSource(3))
	injected := 0
	for i, name := range []string{
		"Snort: Injected RST Pure",
		"Bad TCP Checksum (Max)",
		"Invalid Data-Offset / Bad TCP Checksum",
		"Zeek: Data Packet (ACK) Bad SEQ",
	} {
		strategy, ok := clap.AttackByName(name)
		if !ok {
			log.Fatalf("unknown strategy %q", name)
		}
		// Try to plant each attack in one of the capture's connections.
		for j := i * 7; j < len(capture); j++ {
			if strategy.Apply(capture[j], rng) {
				capture[j].AttackName = name
				injected++
				break
			}
		}
	}
	fmt.Printf("capture: %d connections, %d with hidden evasion attempts\n\n", len(capture), injected)

	// Rank by adversarial score.
	type ranked struct {
		c     *clap.Connection
		score clap.Score
	}
	var rs []ranked
	for _, c := range capture {
		rs = append(rs, ranked{c, det.Score(c)})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].score.Adversarial > rs[j].score.Adversarial })

	fmt.Println("top suspicious connections (analyst view):")
	hits := 0
	for i, r := range rs[:8] {
		truth := "benign"
		if r.c.AttackName != "" {
			truth = r.c.AttackName
			hits++
		}
		fmt.Printf("%d. score=%.5f %-44s truth: %s\n", i+1, r.score.Adversarial, r.c.Key, truth)
		if r.c.AttackName == "" {
			continue
		}
		// Localize the attack vector within the connection.
		wins := det.Localize(r.c, 3)
		fmt.Printf("   localized windows %v; ground-truth adversarial packets %v\n", wins, r.c.AdvIdx)
		if w := r.score.PeakWindow; w >= 0 {
			end := w + det.Cfg.StackLength
			if end > r.c.Len() {
				end = r.c.Len()
			}
			for p := w; p < end; p++ {
				fmt.Printf("   [%d] %v\n", p, r.c.Packets[p])
			}
		}
	}
	fmt.Printf("\n%d/%d attacks surfaced in the top 8 ranks\n", hits, injected)
}
