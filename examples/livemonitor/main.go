// Livemonitor: CLAP as an online detector beside a DPI (Figure 3's
// deployment mode). A packet source streams interleaved traffic; the
// monitor assembles connections on the fly, submits each one to the
// parallel scoring engine as it closes (or when its packet budget fills),
// and raises alerts past a threshold calibrated to a target false-positive
// rate. Scoring runs concurrently across the engine's worker pool, but
// alerts are emitted strictly in submission order, so the alert log is
// deterministic and replayable.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"clap"
)

// monitor consumes scored connections from the engine stream. Its emit
// method runs on the stream's single emitter goroutine, in submission
// order, so the counters need no locking.
type monitor struct {
	threshold float64
	alerts    int
	scored    int
}

func (m *monitor) emit(c *clap.Connection, s clap.Score) {
	m.scored++
	if s.Adversarial >= m.threshold {
		m.alerts++
		truth := "FALSE ALARM"
		if c.AttackName != "" {
			truth = "attack: " + c.AttackName
		}
		fmt.Printf("ALERT %-44s score=%.5f peak-window=%d (%s)\n",
			c.Key, s.Adversarial, s.PeakWindow, truth)
	}
}

func main() {
	log.SetFlags(0)

	fmt.Println("training CLAP...")
	cfg := clap.DefaultConfig()
	cfg.RNNEpochs, cfg.AEEpochs, cfg.AERestarts = 8, 35, 2
	det, err := clap.Train(clap.GenerateBenign(200, 1), cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the deployment threshold on held-out benign traffic,
	// batch-scored through the engine.
	eng := clap.NewEngine(0)
	benign := eng.AdversarialScores(det, clap.GenerateBenign(80, 5))
	threshold := clap.ThresholdAtFPR(benign, 0.04)
	fmt.Printf("operating threshold %.5f (<= 4%% FPR over %d benign flows)\n\n", threshold, len(benign))

	// Live feed: benign flows with a few evasion attempts mixed in.
	flows := clap.GenerateBenign(50, 99)
	rng := rand.New(rand.NewSource(13))
	attacksPlanted := 0
	for i, name := range []string{
		"GFW: Injected RST Bad TCP-Checksum/MD5-Option",
		"Low TTL (Max)",
		"Injected RST-ACK / Bad TCP Checksum",
	} {
		strategy, _ := clap.AttackByName(name)
		for j := i * 11; j < len(flows); j++ {
			if strategy.Apply(flows[j], rng) {
				flows[j].AttackName = name
				attacksPlanted++
				break
			}
		}
	}

	m := &monitor{threshold: threshold}
	stream := eng.NewStream(det.Score, m.emit)
	start := time.Now()
	packets := 0
	for _, c := range flows {
		packets += c.Len()
		stream.Submit(c) // in a live deployment this fires on FIN/RST/timeout
	}
	stream.Close() // drain: every submitted flow is scored and emitted
	elapsed := time.Since(start)

	fmt.Printf("\nprocessed %d flows / %d packets in %v (%.0f pkts/s, %d workers)\n",
		m.scored, packets, elapsed.Round(time.Millisecond),
		float64(packets)/elapsed.Seconds(), eng.Workers())
	fmt.Printf("alerts: %d (attacks planted: %d)\n", m.alerts, attacksPlanted)
}
