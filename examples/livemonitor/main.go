// Livemonitor: the Pipeline's streaming mode as an online detector beside
// a DPI (Figure 3's deployment mode). Connections are submitted to the
// pipeline stream as they close (or when their packet budget fills);
// scoring runs concurrently across the engine's worker pool, but results
// are emitted strictly in submission order, so the alert log is
// deterministic and replayable. The monitor is backend-agnostic — point
// WithBackend at a Kitsune model and nothing else changes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"clap"
)

// monitor consumes ordered pipeline results. Its emit method runs on the
// stream's single emitter goroutine, so the counters need no locking.
type monitor struct {
	alerts int
	scored int
}

func (m *monitor) emit(r clap.Result) {
	m.scored++
	if r.Flagged {
		m.alerts++
		truth := "FALSE ALARM"
		if r.Conn.AttackName != "" {
			truth = "attack: " + r.Conn.AttackName
		}
		fmt.Printf("ALERT %-44s score=%.5f peak-window=%d (%s)\n",
			r.Conn.Key, r.Score, r.PeakWindow, truth)
	}
}

func main() {
	log.SetFlags(0)

	fmt.Println("training CLAP...")
	bk, err := clap.NewBackend(clap.BackendCLAP)
	if err != nil {
		log.Fatal(err)
	}
	bk.(*clap.CLAPBackend).Cfg.RNNEpochs = 8
	bk.(*clap.CLAPBackend).Cfg.AEEpochs = 35
	bk.(*clap.CLAPBackend).Cfg.AERestarts = 2
	train := clap.GenerateBenign(200, 1)
	if err := bk.Train(train, func(string, ...any) {}); err != nil {
		log.Fatal(err)
	}

	// The pipeline calibrates the deployment threshold on held-out benign
	// traffic when the stream opens.
	pipe, err := clap.NewPipeline(
		clap.WithBackend(bk),
		clap.WithThresholdFPR(0.04, clap.TrafficGen(80, 5)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Live feed: benign flows with a few evasion attempts mixed in.
	flows := clap.GenerateBenign(50, 99)
	rng := rand.New(rand.NewSource(13))
	attacksPlanted := 0
	for i, name := range []string{
		"GFW: Injected RST Bad TCP-Checksum/MD5-Option",
		"Low TTL (Max)",
		"Injected RST-ACK / Bad TCP Checksum",
	} {
		strategy, _ := clap.AttackByName(name)
		for j := i * 11; j < len(flows); j++ {
			if strategy.Apply(flows[j], rng) {
				flows[j].AttackName = name
				attacksPlanted++
				break
			}
		}
	}

	m := &monitor{}
	stream, err := pipe.NewStream(m.emit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operating threshold %.5f (<= 4%% FPR)\n\n", stream.Threshold())
	start := time.Now()
	packets := 0
	for _, c := range flows {
		packets += c.Len()
		stream.Submit(c) // in a live deployment this fires on FIN/RST/timeout
	}
	stream.Close() // drain: every submitted flow is scored and emitted
	elapsed := time.Since(start)

	fmt.Printf("\nprocessed %d flows / %d packets in %v (%.0f pkts/s, %d workers)\n",
		m.scored, packets, elapsed.Round(time.Millisecond),
		float64(packets)/elapsed.Seconds(), pipe.Engine().Workers())
	fmt.Printf("alerts: %d (attacks planted: %d)\n", m.alerts, attacksPlanted)
}
