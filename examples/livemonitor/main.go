// Livemonitor: the serving layer as an operator sees it. The example
// trains two small models (CLAP and Baseline #1), boots a clap-serve
// Server on an ephemeral port with a soak source mixing evasion attacks
// into benign traffic, and then drives the daemon purely over its HTTP
// ops API: health, Prometheus metrics, the flagged-connection feed, a
// live threshold adjustment, drift statistics, and a hot reload to the
// second model — with the new threshold derived from a benign capture
// and installed in the same atomic transaction — while scoring is in
// flight: the full online-deployment loop of Figure 3, operated like a
// production service instead of a library.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"clap"
	"clap/internal/serve"
)

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}

func trainModel(tag string, dir string) string {
	fmt.Printf("training %s...\n", tag)
	bk, err := clap.NewBackend(tag)
	if err != nil {
		log.Fatal(err)
	}
	cb := bk.(*clap.CLAPBackend)
	cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs, cb.Cfg.AERestarts = 8, 35, 2
	if err := bk.Train(clap.GenerateBenign(200, 1), func(string, ...any) {}); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, tag+".model")
	if err := clap.SaveBackendFile(path, bk); err != nil {
		log.Fatal(err)
	}
	return path
}

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "livemonitor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	clapModel := trainModel(clap.BackendCLAP, dir)
	b1Model := trainModel(clap.BackendBaseline1, dir)

	initial, err := clap.LoadBackendFile(clapModel)
	if err != nil {
		log.Fatal(err)
	}

	// The daemon: soak ingest (benign + 20% evasion attacks), threshold
	// calibrated to a 4% FPR, ops API on an ephemeral port, and a
	// dedup+rate-limited alert log on stdout.
	alerts := clap.NewDedupAlertLog(os.Stdout, 10*time.Second, 5)
	srv, err := serve.New(serve.Config{
		Backend:     initial,
		ModelPath:   clapModel,
		Addr:        "127.0.0.1:0",
		Calibration: clap.TrafficGen(80, 5),
		FPR:         0.04,
		OnResult: func(r clap.Result) {
			if err := alerts.Emit(r); err != nil {
				log.Printf("alert sink: %v", err)
			}
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	const soakN = 120
	srv.AddSource(clap.Soak(clap.SoakConfig{
		Connections:    soakN,
		Seed:           99,
		AttackFraction: 0.2,
		Rate:           200, // pace the soak so the reload lands mid-stream
	}))
	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	base := "http://" + srv.OpsAddr()
	fmt.Printf("\nops API at %s\n\n", base)

	// 1. Health.
	fmt.Printf("healthz: %s\n", strings.TrimSpace(string(get(base+"/healthz"))))

	// 2. Live threshold adjustment over HTTP.
	var th struct {
		Threshold float64 `json:"threshold"`
	}
	json.Unmarshal(get(base+"/v1/threshold"), &th)
	fmt.Printf("calibrated threshold: %.6f\n", th.Threshold)
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/threshold",
		strings.NewReader(fmt.Sprintf(`{"threshold": %g}`, th.Threshold*1.1)))
	if resp, err := http.DefaultClient.Do(req); err != nil {
		log.Fatal(err)
	} else {
		resp.Body.Close()
		fmt.Printf("threshold nudged +10%% via PUT /v1/threshold\n")
	}

	// 3. Drift statistics: the live score distribution against the
	// frozen calibration reference.
	fmt.Printf("drift: %s\n", strings.TrimSpace(string(get(base+"/v1/drift"))))

	// 4. Hot reload to the Baseline #1 model while the soak is running. A
	// threshold is model-specific, so the reload names a benign capture
	// as its calibration source: the daemon scores it with the INCOMING
	// model and swaps model + re-derived threshold in one atomic hot-pair
	// transaction — no window where the new model is judged against the
	// old model's threshold (before this, the flow was reload, then a
	// racy PUT /v1/threshold).
	benignPcap := filepath.Join(dir, "benign.pcap")
	if err := clap.WritePCAPFile(benignPcap, clap.GenerateBenign(80, 5), false); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	resp, err := http.Post(base+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path": %q, "calibration": %q, "fpr": 0.04}`, b1Model, benignPcap)))
	if err != nil {
		log.Fatal(err)
	}
	var reload struct {
		Old, New     serve.ReloadInfo
		Recalibrated bool
	}
	json.NewDecoder(resp.Body).Decode(&reload)
	resp.Body.Close()
	fmt.Printf("atomic reload+recalibration: %s th=%.6f (gen %d) -> %s th=%.6f (gen %d), scoring never paused\n\n",
		reload.Old.Tag, reload.Old.Threshold, reload.Old.Generation,
		reload.New.Tag, reload.New.Threshold, reload.New.Generation)

	// 5. Wait for the soak to drain, then read the final state.
	for srv.Scored() < soakN {
		time.Sleep(20 * time.Millisecond)
	}

	var flagged struct {
		Flagged      []serve.FlaggedConn `json:"flagged"`
		TotalFlagged int                 `json:"total_flagged"`
	}
	json.Unmarshal(get(base+"/v1/flagged?n=5"), &flagged)
	fmt.Printf("\n/v1/flagged: %d total, most recent:\n", flagged.TotalFlagged)
	for _, f := range flagged.Flagged {
		truth := "FALSE ALARM"
		if f.Attack != "" {
			truth = "attack: " + f.Attack
		}
		fmt.Printf("  %-44s score=%.5f (%s)\n", f.Key, f.Score, truth)
	}

	// 6. A slice of the Prometheus exposition, drift gauges included.
	fmt.Printf("\n/metrics (selected):\n")
	for _, line := range strings.Split(string(get(base+"/metrics")), "\n") {
		if strings.HasPrefix(line, "clap_serve_connections_scored_total") ||
			strings.HasPrefix(line, "clap_serve_packets_total") ||
			strings.HasPrefix(line, "clap_serve_flagged_total") ||
			strings.HasPrefix(line, "clap_serve_reloads_total") ||
			strings.HasPrefix(line, "clap_serve_drift ") ||
			strings.HasPrefix(line, "clap_serve_operating_fpr") ||
			strings.HasPrefix(line, "clap_serve_model_info") {
			fmt.Printf("  %s\n", line)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclean shutdown: every accepted connection was scored")
}
