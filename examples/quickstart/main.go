// Quickstart: train a detection backend on benign traffic, inject one
// evasion attack, and detect it through the backend-agnostic Pipeline —
// the README's 60-second tour of the public API. Swap the backend tag for
// "baseline1" or "kitsune" and the rest of the program is unchanged.
package main

import (
	"fmt"
	"log"
	"os"

	"clap"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a backend from the registry and train it on benign traffic
	// only (the stand-in for a MAWI capture).
	bk, err := clap.NewBackend(clap.BackendCLAP)
	if err != nil {
		log.Fatal(err)
	}
	if cb, ok := bk.(*clap.CLAPBackend); ok {
		cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs, cb.Cfg.AERestarts = 8, 35, 2
	}
	fmt.Println("training CLAP (unsupervised, benign traffic only)...")
	train := clap.GenerateBenign(200, 1)
	if err := bk.Train(train, func(string, ...any) {}); err != nil {
		log.Fatal(err)
	}

	// 2. Build the deployment pipeline: calibrate the operating point at
	// 5% FPR on held-out benign traffic, localize the top 3 windows.
	pipe, err := clap.NewPipeline(
		clap.WithBackend(bk),
		clap.WithThresholdFPR(0.05, clap.TrafficGen(80, 5)),
		clap.WithTopN(3),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Fresh traffic with the paper's motivating example injected into
	// half the connections, scored end to end. The alert-log sink prints
	// each detection as it is emitted.
	suspect := clap.AttackCorpus(
		clap.TrafficGen(60, 42),
		"GFW: Injected RST Bad TCP-Checksum/MD5-Option",
		0.5, 7,
	)
	sum, err := pipe.Run(suspect, clap.NewAlertLog(os.Stdout))
	if err != nil {
		log.Fatal(err)
	}

	// 4. The summary holds every verdict for programmatic use.
	fmt.Printf("\nthreshold at 5%% FPR: %.5f\n", sum.Threshold)
	attacked, caught, falseAlarms := 0, 0, 0
	for _, r := range sum.Results {
		switch {
		case r.Conn.AttackName != "":
			attacked++
			if r.Flagged {
				caught++
			}
		case r.Flagged:
			falseAlarms++
		}
	}
	fmt.Printf("detected %d/%d injected attacks (%d false alarms over %d benign flows)\n",
		caught, attacked, falseAlarms, len(sum.Results)-attacked)
}
