// Quickstart: train CLAP on benign traffic, inject one evasion attack, and
// detect it — the README's 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"clap"
)

func main() {
	log.SetFlags(0)

	// 1. Benign traffic (the stand-in for a MAWI capture).
	fmt.Println("generating benign traffic...")
	train := clap.GenerateBenign(200, 1)

	// 2. Train CLAP: RNN state predictor + context autoencoder, benign only.
	cfg := clap.DefaultConfig()
	cfg.RNNEpochs, cfg.AEEpochs, cfg.AERestarts = 8, 35, 2
	fmt.Println("training CLAP (unsupervised, benign traffic only)...")
	det, err := clap.Train(train, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Fresh traffic: inject the paper's motivating example into half.
	carriers := clap.GenerateBenign(60, 42)
	strategy, _ := clap.AttackByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	rng := rand.New(rand.NewSource(7))

	var benignScores []float64
	type scored struct {
		name  string
		score float64
	}
	var results []scored
	for i, c := range carriers {
		if i%2 == 0 {
			benignScores = append(benignScores, det.Score(c).Adversarial)
			continue
		}
		cc := c.Clone()
		if !strategy.Apply(cc, rng) {
			continue
		}
		results = append(results, scored{cc.Key.String(), det.Score(cc).Adversarial})
	}

	// 4. Pick an operating point: at most 5% false positives on benign.
	threshold := clap.ThresholdAtFPR(benignScores, 0.05)
	fmt.Printf("\nthreshold at 5%% FPR: %.5f\n", threshold)
	fmt.Printf("%-46s %-10s %s\n", "connection", "score", "verdict")
	caught := 0
	for _, r := range results {
		verdict := "benign"
		if r.score >= threshold {
			verdict = "EVASION DETECTED"
			caught++
		}
		fmt.Printf("%-46s %-10.5f %s\n", r.name, r.score, verdict)
	}
	fmt.Printf("\ndetected %d/%d injected %q attacks\n", caught, len(results), strategy.Name)
}
