// Censorlab reproduces the paper's motivating example (§1) end to end:
// the Bad-Checksum-RST evasion against a GFW-like DPI.
//
// It shows all three vantage points of the threat model (Figure 1):
//  1. the strict endhost drops the garbled RST and keeps talking,
//  2. the GFW model believes the connection is over and stops monitoring —
//     the follow-up "malicious" payload escapes inspection,
//  3. CLAP — as a pipeline backend, trained only on benign traffic —
//     flags the connection and localizes the injected packet.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"clap"
)

func main() {
	log.SetFlags(0)

	// A benign connection to attack.
	conns := clap.GenerateBenign(30, 11)
	strategy, _ := clap.AttackByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	rng := rand.New(rand.NewSource(2))

	var victim *clap.Connection
	for _, c := range conns {
		cc := c.Clone()
		if strategy.Apply(cc, rng) && cc.Len() >= 10 {
			victim = cc
			break
		}
	}
	if victim == nil {
		log.Fatal("no suitable carrier connection")
	}
	fmt.Printf("connection %v, %d packets, adversarial packet at index %v\n\n",
		victim.Key, victim.Len(), victim.AdvIdx)

	// Vantage point 1+2: endhost vs DPI divergence.
	fmt.Println("=== endhost vs DPI (threat model validation) ===")
	for _, r := range clap.CheckEvasion(victim) {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println("  -> the GFW model disengaged on the forged RST; the strict endhost")
	fmt.Println("     ignored it (bad checksum) and accepted the follow-up data.")

	// Vantage point 3: CLAP as a pipeline backend.
	fmt.Println("\n=== CLAP (defence) ===")
	bk, err := clap.NewBackend(clap.BackendCLAP)
	if err != nil {
		log.Fatal(err)
	}
	cb := bk.(*clap.CLAPBackend)
	cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs, cb.Cfg.AERestarts = 8, 35, 2
	train := clap.GenerateBenign(200, 1)
	if err := bk.Train(train, func(string, ...any) {}); err != nil {
		log.Fatal(err)
	}
	pipe, err := clap.NewPipeline(
		clap.WithBackend(bk),
		clap.WithThresholdFPR(0.02, clap.TrafficGen(60, 5)),
		clap.WithWindowErrors(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := pipe.Run(clap.Conns(victim))
	if err != nil {
		log.Fatal(err)
	}
	r := sum.Results[0]

	fmt.Printf("  adversarial score: %.5f (threshold %.5f)\n", r.Score, sum.Threshold)
	if r.Flagged {
		fmt.Println("  verdict: EVASION DETECTED")
	} else {
		fmt.Println("  verdict: missed (try more training epochs)")
	}
	fmt.Printf("  peak reconstruction error at window %d; windows cover packets [w, w+%d)\n",
		r.PeakWindow, sum.WindowSpan)
	fmt.Printf("  ground truth adversarial packet: %v\n", victim.AdvIdx)
	fmt.Println("\n  per-window reconstruction errors (Figure 6's shape):")
	max := 0.0
	for _, e := range r.Errors {
		if e > max {
			max = e
		}
	}
	for i, e := range r.Errors {
		bar := ""
		for j := 0; j < int(e/max*40); j++ {
			bar += "#"
		}
		fmt.Printf("  win %2d %.5f %s\n", i, e, bar)
	}
}
