package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeWorker serves a minimal clap-serve ops surface with controllable
// counters.
func fakeWorker(scored int, drift float64, alert bool) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "model": "clap", "scored": scored})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# HELP clap_serve_connections_scored_total Connections scored since start.\n")
		fmt.Fprintf(w, "# TYPE clap_serve_connections_scored_total counter\n")
		fmt.Fprintf(w, "clap_serve_connections_scored_total %d\n", scored)
		fmt.Fprintf(w, "# HELP clap_serve_source_connections_total Connections delivered by the source.\n")
		fmt.Fprintf(w, "# TYPE clap_serve_source_connections_total counter\n")
		fmt.Fprintf(w, "clap_serve_source_connections_total{source=\"afpacket:eth0\"} %d\n", scored)
		fmt.Fprintf(w, "# HELP clap_serve_stage_latency_seconds Per-stage latency through the scoring stream.\n")
		fmt.Fprintf(w, "# TYPE clap_serve_stage_latency_seconds histogram\n")
		fmt.Fprintf(w, "clap_serve_stage_latency_seconds_bucket{stage=\"score\",le=\"+Inf\"} %d\n", scored)
		fmt.Fprintf(w, "clap_serve_stage_latency_seconds_sum{stage=\"score\"} 0.5\n")
		fmt.Fprintf(w, "clap_serve_stage_latency_seconds_count{stage=\"score\"} %d\n", scored)
	})
	mux.HandleFunc("/v1/summary", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"scored":             scored,
			"packets":            scored * 10,
			"flagged":            1,
			"packets_per_second": 100.0,
			"queue_depth":        2,
			"queue_capacity":     256,
			"model":              map[string]any{"tag": "clap"},
		})
	})
	mux.HandleFunc("/v1/drift", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"drift":        map[string]any{"drift": drift, "alert": alert},
			"alerts_total": 3,
		})
	})
	return httptest.NewServer(mux)
}

func newTestAggregator(t *testing.T, urls ...string) *httptest.Server {
	t.Helper()
	a := newAggregator(urls, &http.Client{Timeout: 2 * time.Second})
	ts := httptest.NewServer(a.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestShardsHealthz(t *testing.T) {
	w0 := fakeWorker(10, 0.1, false)
	defer w0.Close()
	w1 := fakeWorker(20, 0.2, false)
	defer w1.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // already closed: connection refused

	t.Run("all up", func(t *testing.T) {
		ts := newTestAggregator(t, w0.URL, w1.URL)
		code, body := get(t, ts.URL+"/healthz")
		if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
			t.Fatalf("healthz: %d %s", code, body)
		}
	})
	t.Run("one down is degraded, not fatal", func(t *testing.T) {
		ts := newTestAggregator(t, w0.URL, down.URL)
		code, body := get(t, ts.URL+"/healthz")
		if code != http.StatusOK || !strings.Contains(body, `"status": "degraded"`) {
			t.Fatalf("healthz: %d %s", code, body)
		}
		if !strings.Contains(body, `"status": "down"`) || !strings.Contains(body, `"error"`) {
			t.Fatalf("down shard not reported: %s", body)
		}
	})
	t.Run("all down is 503", func(t *testing.T) {
		ts := newTestAggregator(t, down.URL)
		if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
			t.Fatalf("healthz with no workers up: %d", code)
		}
	})
}

// TestShardsMetricsMerge pins the exposition contract: one HELP/TYPE per
// family, every sample tagged with its shard, histogram families kept
// intact, and a down worker reflected in clap_shards_worker_up instead
// of breaking the scrape.
func TestShardsMetricsMerge(t *testing.T) {
	w0 := fakeWorker(10, 0, false)
	defer w0.Close()
	w1 := fakeWorker(20, 0, false)
	defer w1.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close()

	ts := newTestAggregator(t, w0.URL, w1.URL, down.URL)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}

	for _, want := range []string{
		`clap_shards_workers 3`,
		`clap_shards_worker_up{shard="0"} 1`,
		`clap_shards_worker_up{shard="1"} 1`,
		`clap_shards_worker_up{shard="2"} 0`,
		`clap_serve_connections_scored_total{shard="0"} 10`,
		`clap_serve_connections_scored_total{shard="1"} 20`,
		`clap_serve_source_connections_total{shard="0",source="afpacket:eth0"} 10`,
		`clap_serve_stage_latency_seconds_bucket{shard="1",stage="score",le="+Inf"} 20`,
		`clap_serve_stage_latency_seconds_count{shard="0",stage="score"} 10`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("merged exposition missing %q\n%s", want, body)
		}
	}
	// HELP/TYPE exactly once per family, and metadata precedes every
	// sample of its family (validity of the merged exposition).
	for _, fam := range []string{
		"clap_serve_connections_scored_total",
		"clap_serve_source_connections_total",
		"clap_serve_stage_latency_seconds",
	} {
		if n := strings.Count(body, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s declared %d times, want 1", fam, n)
		}
		typeAt := strings.Index(body, "# TYPE "+fam+" ")
		firstSample := strings.Index(body, fam+"{")
		if firstSample >= 0 && firstSample < typeAt {
			t.Errorf("family %s: sample precedes TYPE", fam)
		}
	}
	// Every non-comment line parses as `name{labels} value`.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable merged line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q", line)
		}
	}
}

func TestShardsSummaryFleetSums(t *testing.T) {
	w0 := fakeWorker(10, 0, false)
	defer w0.Close()
	w1 := fakeWorker(20, 0, false)
	defer w1.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close()

	ts := newTestAggregator(t, w0.URL, w1.URL, down.URL)
	code, body := get(t, ts.URL+"/v1/summary")
	if code != http.StatusOK {
		t.Fatalf("summary: %d", code)
	}
	var out struct {
		Fleet  map[string]float64 `json:"fleet"`
		Shards []map[string]any   `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, body)
	}
	if out.Fleet["scored"] != 30 || out.Fleet["packets"] != 300 || out.Fleet["flagged"] != 2 {
		t.Fatalf("fleet sums = %v", out.Fleet)
	}
	if out.Fleet["packets_per_second"] != 200 || out.Fleet["queue_capacity"] != 512 {
		t.Fatalf("fleet sums = %v", out.Fleet)
	}
	if len(out.Shards) != 3 {
		t.Fatalf("%d shards reported, want 3", len(out.Shards))
	}
	if _, ok := out.Shards[2]["error"]; !ok {
		t.Fatalf("down shard carries no error: %v", out.Shards[2])
	}
}

func TestShardsDriftFleetView(t *testing.T) {
	w0 := fakeWorker(10, 0.12, false)
	defer w0.Close()
	w1 := fakeWorker(20, 0.55, true)
	defer w1.Close()

	ts := newTestAggregator(t, w0.URL, w1.URL)
	code, body := get(t, ts.URL+"/v1/drift")
	if code != http.StatusOK {
		t.Fatalf("drift: %d", code)
	}
	var out struct {
		Fleet struct {
			MaxDrift    float64 `json:"max_drift"`
			Alerting    bool    `json:"alerting"`
			AlertsTotal float64 `json:"alerts_total"`
		} `json:"fleet"`
		Shards []map[string]any `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("drift not JSON: %v\n%s", err, body)
	}
	if out.Fleet.MaxDrift != 0.55 || !out.Fleet.Alerting || out.Fleet.AlertsTotal != 6 {
		t.Fatalf("fleet drift = %+v", out.Fleet)
	}
}

func TestInjectShardLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{`m 1`, `m{shard="3"} 1`},
		{`m{a="b"} 1`, `m{shard="3",a="b"} 1`},
		{`m{} 1`, `m{shard="3"} 1`},
		{`m{a="has sp{ace"} 1`, `m{shard="3",a="has sp{ace"} 1`},
		{`m_bucket{le="+Inf"} 4`, `m_bucket{shard="3",le="+Inf"} 4`},
	} {
		if got := injectShardLabel(tc.in, 3); got != tc.want {
			t.Errorf("injectShardLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
