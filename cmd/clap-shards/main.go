// Command clap-shards fronts a fanout fleet: N clap-serve workers, each
// capturing a disjoint PACKET_FANOUT_HASH shard of one interface
// (clap-serve -source afpacket:IFACE:ID with a shared ID), present one
// merged ops surface here. The aggregator holds no state of its own —
// every request fans out to the workers concurrently and merges whatever
// answers arrive, so a down worker degrades the view instead of taking
// it out.
//
//	GET /healthz     fleet liveness: per-worker status, 503 only when
//	                 every worker is unreachable
//	GET /metrics     the workers' Prometheus expositions merged into
//	                 one, every sample tagged shard="N" (HELP/TYPE
//	                 emitted once per family, so the merge stays a
//	                 valid exposition)
//	GET /v1/summary  fleet totals (scored/packets/flagged/rate summed
//	                 across shards) plus each worker's own summary
//	GET /v1/drift    each shard's drift status plus the fleet maximum
//	                 and whether any shard is alerting
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// worker is one clap-serve instance in the fleet.
type worker struct {
	// Shard is the worker's position in the -worker list; it becomes the
	// shard label on merged metrics.
	Shard int
	// URL is the worker's ops API base ("http://127.0.0.1:8081").
	URL string
}

// fetchResult is one worker's answer to a fan-out request.
type fetchResult struct {
	worker
	body []byte
	err  error
}

// aggregator merges N workers' ops surfaces.
type aggregator struct {
	workers []worker
	client  *http.Client
}

func newAggregator(urls []string, client *http.Client) *aggregator {
	a := &aggregator{client: client}
	for i, u := range urls {
		a.workers = append(a.workers, worker{Shard: i, URL: strings.TrimRight(u, "/")})
	}
	return a
}

// fetchAll GETs path from every worker concurrently. Results come back
// in worker order; a worker that is down or answers non-200 carries an
// error instead of a body.
func (a *aggregator) fetchAll(ctx context.Context, path string) []fetchResult {
	out := make([]fetchResult, len(a.workers))
	var wg sync.WaitGroup
	for i, wk := range a.workers {
		wg.Add(1)
		go func(i int, wk worker) {
			defer wg.Done()
			out[i] = fetchResult{worker: wk}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.URL+path, nil)
			if err != nil {
				out[i].err = err
				return
			}
			resp, err := a.client.Do(req)
			if err != nil {
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				out[i].err = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				out[i].err = fmt.Errorf("%s%s: %s: %s", wk.URL, path, resp.Status, strings.TrimSpace(string(body)))
				return
			}
			out[i].body = body
		}(i, wk)
	}
	wg.Wait()
	return out
}

func (a *aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/v1/summary", a.handleSummary)
	mux.HandleFunc("/v1/drift", a.handleDrift)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (a *aggregator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	results := a.fetchAll(r.Context(), "/healthz")
	up := 0
	shards := make([]map[string]any, len(results))
	for i, res := range results {
		s := map[string]any{"shard": res.Shard, "url": res.URL}
		if res.err != nil {
			s["status"] = "down"
			s["error"] = res.err.Error()
		} else {
			up++
			s["status"] = "ok"
			var h map[string]any
			if json.Unmarshal(res.body, &h) == nil {
				s["model"] = h["model"]
				s["scored"] = h["scored"]
			}
		}
		shards[i] = s
	}
	status, code := "ok", http.StatusOK
	switch {
	case up == 0:
		status, code = "down", http.StatusServiceUnavailable
	case up < len(results):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"workers": len(results),
		"up":      up,
		"shards":  shards,
	})
}

// promFamily is one metric family being merged: its metadata (from the
// first shard that declared it) and every shard's samples.
type promFamily struct {
	name    string
	help    string // full "# HELP ..." line
	typ     string // full "# TYPE ..." line
	samples []string
}

// mergeExpositions folds per-shard Prometheus text expositions into one.
// Families keep first-seen order; each sample line gains a shard label
// as its first label, so series that collide across workers (they all
// export the same names) stay distinct and the output remains a valid
// exposition with exactly one HELP/TYPE per family.
func mergeExpositions(results []fetchResult) string {
	var order []string
	fams := map[string]*promFamily{}
	family := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, res := range results {
		if res.err != nil {
			continue
		}
		// Comment lines declare the family of the samples that follow;
		// histogram samples (name_bucket/_sum/_count) belong to the
		// declared base family, which this tracking preserves.
		var current *promFamily
		for _, line := range strings.Split(string(res.body), "\n") {
			switch {
			case line == "":
			case strings.HasPrefix(line, "# HELP "):
				rest := strings.TrimPrefix(line, "# HELP ")
				name, _, _ := strings.Cut(rest, " ")
				current = family(name)
				if current.help == "" {
					current.help = line
				}
			case strings.HasPrefix(line, "# TYPE "):
				rest := strings.TrimPrefix(line, "# TYPE ")
				name, _, _ := strings.Cut(rest, " ")
				current = family(name)
				if current.typ == "" {
					current.typ = line
				}
			case strings.HasPrefix(line, "#"):
			default:
				if current == nil {
					// A sample with no preceding metadata: its own family.
					name := line
					if i := strings.IndexAny(line, "{ "); i >= 0 {
						name = line[:i]
					}
					current = family(name)
				}
				current.samples = append(current.samples, injectShardLabel(line, res.Shard))
			}
		}
	}
	var b strings.Builder
	for _, name := range order {
		f := fams[name]
		if f.help != "" {
			b.WriteString(f.help)
			b.WriteByte('\n')
		}
		if f.typ != "" {
			b.WriteString(f.typ)
			b.WriteByte('\n')
		}
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// injectShardLabel rewrites one sample line to carry shard="N" as its
// first label. Label values may contain spaces and escaped quotes but
// never raw newlines (the exposition escapes them), so scanning for the
// brace that opens the label set — which precedes any quote — is safe.
func injectShardLabel(line string, shard int) string {
	tag := fmt.Sprintf(`shard="%d"`, shard)
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		if strings.HasPrefix(line[brace:], "{}") {
			return line[:brace] + "{" + tag + "}" + line[brace+2:]
		}
		return line[:brace+1] + tag + "," + line[brace+1:]
	}
	if space < 0 {
		return line // not a sample; emit unchanged
	}
	return line[:space] + "{" + tag + "}" + line[space:]
}

func (a *aggregator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	results := a.fetchAll(r.Context(), "/metrics")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	up := 0
	for _, res := range results {
		if res.err == nil {
			up++
		}
	}
	// The aggregator's own series lead the exposition, so a scrape shows
	// fleet liveness even when every worker is down.
	fmt.Fprintf(w, "# HELP clap_shards_workers Workers configured in the fleet.\n# TYPE clap_shards_workers gauge\nclap_shards_workers %d\n", len(results))
	fmt.Fprintf(w, "# HELP clap_shards_worker_up 1 when the shard's worker answered the scrape.\n# TYPE clap_shards_worker_up gauge\n")
	for _, res := range results {
		v := 0
		if res.err == nil {
			v = 1
		}
		fmt.Fprintf(w, "clap_shards_worker_up{shard=\"%d\"} %d\n", res.Shard, v)
	}
	io.WriteString(w, mergeExpositions(results))
}

func (a *aggregator) handleSummary(w http.ResponseWriter, r *http.Request) {
	results := a.fetchAll(r.Context(), "/v1/summary")
	fleet := map[string]float64{}
	shards := make([]map[string]any, len(results))
	for i, res := range results {
		s := map[string]any{"shard": res.Shard, "url": res.URL}
		if res.err != nil {
			s["error"] = res.err.Error()
			shards[i] = s
			continue
		}
		var sum map[string]any
		if err := json.Unmarshal(res.body, &sum); err != nil {
			s["error"] = fmt.Sprintf("unparseable summary: %v", err)
			shards[i] = s
			continue
		}
		s["summary"] = sum
		shards[i] = s
		// Additive counters and capacities sum across shards; everything
		// else stays in the per-shard view.
		for _, k := range []string{"scored", "packets", "flagged", "packets_per_second", "queue_depth", "queue_capacity"} {
			if v, ok := sum[k].(float64); ok {
				fleet[k] += v
			}
		}
	}
	keys := make([]string, 0, len(fleet))
	for k := range fleet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, map[string]any{
		"fleet":  fleet,
		"shards": shards,
	})
}

func (a *aggregator) handleDrift(w http.ResponseWriter, r *http.Request) {
	results := a.fetchAll(r.Context(), "/v1/drift")
	shards := make([]map[string]any, len(results))
	maxDrift := 0.0
	alerting := false
	var alerts float64
	for i, res := range results {
		s := map[string]any{"shard": res.Shard, "url": res.URL}
		if res.err != nil {
			s["error"] = res.err.Error()
			shards[i] = s
			continue
		}
		var body map[string]any
		if err := json.Unmarshal(res.body, &body); err != nil {
			s["error"] = fmt.Sprintf("unparseable drift status: %v", err)
			shards[i] = s
			continue
		}
		s["drift"] = body["drift"]
		s["alerts_total"] = body["alerts_total"]
		if v, ok := body["alerts_total"].(float64); ok {
			alerts += v
		}
		if ds, ok := body["drift"].(map[string]any); ok {
			if v, ok := ds["drift"].(float64); ok && v > maxDrift {
				maxDrift = v
			}
			if v, ok := ds["alert"].(bool); ok && v {
				alerting = true
			}
		}
		shards[i] = s
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"fleet": map[string]any{
			"max_drift":    maxDrift,
			"alerting":     alerting,
			"alerts_total": alerts,
		},
		"shards": shards,
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-shards: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:8090", "aggregator listen address")
		timeout = flag.Duration("timeout", 5*time.Second, "per-worker fetch timeout")
	)
	var urls []string
	flag.Func("worker", "ops API base URL of one clap-serve worker (repeatable, shard order)", func(v string) error {
		if v == "" {
			return fmt.Errorf("-worker: empty URL")
		}
		urls = append(urls, v)
		return nil
	})
	flag.Parse()
	if len(urls) == 0 {
		log.Fatal("need at least one -worker URL")
	}
	a := newAggregator(urls, &http.Client{Timeout: *timeout})
	log.Printf("aggregating %d workers on http://%s", len(urls), *addr)
	log.Fatal(http.ListenAndServe(*addr, a.Handler()))
}
