// Command clap-serve is the always-on online detector: it ingests
// connections continuously from live sources, scores them through any
// registered backend, and exposes an ops API for health, Prometheus
// metrics, flagged connections, live threshold adjustment, drift
// monitoring, and hot model reload with optional atomic recalibration
// (POST /v1/reload, or SIGHUP). SIGINT/SIGTERM drain the queue and
// scoring stream before exiting, so every accepted connection is scored.
//
// Usage:
//
//	clap-serve -model clap.model -tail /var/run/capture.pcap
//	clap-serve -model clap.model -stdin < fifo.pcap
//	clap-serve -model clap.model -soak 0 -soak-rate 50 -soak-attack 0.2
//	clap-serve -model clap.model -replay suspect.pcap -calibrate benign.pcap
//
// Multi-tenant serving (DESIGN.md §11): repeatable -tenant flags add
// named tenants, each with its own model, threshold, calibration and
// fair-share quota, all sharing one batched scoring engine. -model stays
// the default tenant, byte-for-byte compatible with single-tenant runs:
//
//	clap-serve -model clap.model -tail a.pcap \
//	        -tenant edge=edge.model:0.08 -tenant-source edge=tail:edge.pcap \
//	        -tenant-quota edge=64:200:50
//
// A -calibrate start persists its calibration snapshot (threshold plus
// the benign-score reference distribution) to <model>.calib, and a later
// start without -calibrate resumes from it, so drift monitoring keeps
// its reference across restarts.
//
// Ops API (default 127.0.0.1:8080; see DESIGN.md §7 and §9):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//	curl localhost:8080/v1/tenants
//	curl localhost:8080/v1/flagged?n=10
//	curl localhost:8080/v1/drift
//	curl "localhost:8080/v1/summary?tenant=edge"
//	curl -X PUT -d '{"threshold":0.08}' localhost:8080/v1/threshold
//	curl -X POST -d '{"path":"new.model"}' localhost:8080/v1/reload
//	curl -X POST -d '{"path":"new.model","calibration":"benign.pcap","fpr":0.01}' \
//	        localhost:8080/v1/reload
//	curl -X POST -d '{"calibration":"live"}' localhost:8080/v1/reload
//
// With -trace-sample N, every verdict carries a provenance record and
// flagged connections (plus every Nth delivery per tenant) retain their
// full per-window error series (DESIGN.md §12):
//
//	curl "localhost:8080/v1/trace?n=10&tenant=edge"
//	curl "localhost:8080/v1/explain?key=<connection key>"
//
// -debug-addr serves net/http/pprof on its own listener, separate from
// the ops API, so profiling stays off the scraped port.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clap"
	"clap/internal/serve"
	"clap/internal/tenant"
)

// tenantFlag is one -tenant declaration: name=model.bin[:threshold].
type tenantFlag struct {
	name      string
	model     string
	threshold float64
}

// tenantSourceFlag is one -tenant-source declaration: name=kind:arg.
type tenantSourceFlag struct {
	name string
	spec string
}

// parseTenantFlag splits name=model.bin[:threshold]. The threshold suffix
// is recognized only when it parses as a number, so model paths containing
// colons stay usable.
func parseTenantFlag(v string) (tenantFlag, error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return tenantFlag{}, fmt.Errorf("-tenant %q: want name=model.bin[:threshold]", v)
	}
	tf := tenantFlag{name: name, model: rest}
	if i := strings.LastIndex(rest, ":"); i > 0 {
		if th, err := strconv.ParseFloat(rest[i+1:], 64); err == nil {
			tf.model, tf.threshold = rest[:i], th
		}
	}
	return tf, nil
}

// parseQuotaFlag splits name=maxinflight[:rate[:burst]].
func parseQuotaFlag(v string) (string, tenant.Quota, error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return "", tenant.Quota{}, fmt.Errorf("-tenant-quota %q: want name=maxinflight[:rate[:burst]]", v)
	}
	parts := strings.Split(rest, ":")
	if len(parts) > 3 {
		return "", tenant.Quota{}, fmt.Errorf("-tenant-quota %q: want name=maxinflight[:rate[:burst]]", v)
	}
	var q tenant.Quota
	var err error
	if q.MaxInFlight, err = strconv.Atoi(parts[0]); err != nil {
		return "", tenant.Quota{}, fmt.Errorf("-tenant-quota %q: bad max-in-flight %q", v, parts[0])
	}
	if len(parts) > 1 {
		if q.Rate, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return "", tenant.Quota{}, fmt.Errorf("-tenant-quota %q: bad rate %q", v, parts[1])
		}
	}
	if len(parts) > 2 {
		if q.Burst, err = strconv.Atoi(parts[2]); err != nil {
			return "", tenant.Quota{}, fmt.Errorf("-tenant-quota %q: bad burst %q", v, parts[2])
		}
	}
	return name, q, q.Validate()
}

// sourceFor builds the ingest source a -source or -tenant-source spec
// names.
func sourceFor(spec string, live clap.LiveConfig, soakSeed int64) (clap.ServeSource, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "afpacket":
		iface, rest, _ := strings.Cut(arg, ":")
		if iface == "" {
			return nil, fmt.Errorf("afpacket source needs an interface (afpacket:IFACE[:fanout-id])")
		}
		fanoutID := -1
		if rest != "" {
			id, err := strconv.Atoi(rest)
			if err != nil || id < 0 || id > 0xffff {
				return nil, fmt.Errorf("afpacket source: bad fanout id %q (want 0..65535)", rest)
			}
			fanoutID = id
		}
		return clap.AFPacket(iface, fanoutID, live), nil
	case "tail":
		if arg == "" {
			return nil, fmt.Errorf("tail source needs a path (tail:PATH)")
		}
		return clap.TailPCAP(arg, live), nil
	case "replay":
		if arg == "" {
			return nil, fmt.Errorf("replay source needs a path (replay:PATH)")
		}
		return clap.Replay("replay:"+arg, clap.PCAPFile(arg)), nil
	case "soak":
		sc := clap.SoakConfig{Seed: soakSeed}
		parts := strings.Split(arg, ":")
		if len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("soak source: want soak:N[:rate[:attack]]")
		}
		var err error
		if sc.Connections, err = strconv.Atoi(parts[0]); err != nil {
			return nil, fmt.Errorf("soak source: bad connection count %q", parts[0])
		}
		if len(parts) > 1 {
			if sc.Rate, err = strconv.ParseFloat(parts[1], 64); err != nil {
				return nil, fmt.Errorf("soak source: bad rate %q", parts[1])
			}
		}
		if len(parts) > 2 {
			if sc.AttackFraction, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, fmt.Errorf("soak source: bad attack fraction %q", parts[2])
			}
		}
		return clap.Soak(sc), nil
	}
	return nil, fmt.Errorf("unknown source kind %q (want afpacket:IFACE[:fanout-id], tail:PATH, replay:PATH or soak:N[:rate[:attack]])", kind)
}

// prefixWriter prepends a tenant tag to each alert line. writeAlert and
// the drift formatter emit one line per Write, so prefixing per call is
// line-accurate.
type prefixWriter struct {
	w      io.Writer
	prefix string
}

func (p prefixWriter) Write(b []byte) (int, error) {
	if _, err := io.WriteString(p.w, p.prefix); err != nil {
		return 0, err
	}
	return p.w.Write(b)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-serve: ")
	var (
		model       = flag.String("model", "", "trained model path (required; also the default -reload source)")
		addr        = flag.String("addr", "127.0.0.1:8080", "ops API listen address")
		threshold   = flag.Float64("threshold", 0, "fixed operating threshold (0 with no -calibrate: score-only)")
		calibrate   = flag.String("calibrate", "", "benign pcap to calibrate the threshold from")
		fpr         = flag.Float64("fpr", 0.01, "target false-positive rate for -calibrate")
		escalateFPR = flag.Float64("escalate-fpr", 0,
			"cascade models: override the persisted escalate-FPR (takes effect at -calibrate)")
		top      = flag.Int("top", 5, "Top-N windows to localize per flagged connection (negative: disable localization)")
		workers  = flag.Int("workers", 0, "scoring workers (0: all cores)")
		shards   = flag.Int("shards", 0, "assembly shards (0: same as workers)")
		batch    = flag.Int("batch", 0, "inference micro-batch size (0: default 24; 1: unbatched)")
		lockstep = flag.Int("lockstep", 0, "cross-connection GRU lockstep width (0: off; -1: bench-tuned default)")
		queue    = flag.Int("queue", 256, "ingest queue depth")
		shed     = flag.Bool("shed", false, "drop connections at a full queue instead of backpressuring sources")

		tail   = flag.String("tail", "", "follow a growing pcap file")
		stdin  = flag.Bool("stdin", false, "read pcap records from stdin (a pipe or fifo)")
		replay = flag.String("replay", "", "replay a recorded pcap once")
		poll   = flag.Duration("poll", 250*time.Millisecond, "tail poll interval")
		idle   = flag.Duration("idle-flush", 5*time.Second, "emit live connections idle this long")
		budget = flag.Int("max-packets", 512, "cut live connections at this packet budget (-1: unbounded)")

		soak       = flag.Int("soak", -1, "soak mode: generate this many synthetic connections (0: unbounded)")
		soakRate   = flag.Float64("soak-rate", 0, "soak connections per second (0: as fast as accepted)")
		soakAttack = flag.Float64("soak-attack", 0, "fraction of soak connections carrying an evasion attack")
		soakSeed   = flag.Int64("soak-seed", 1, "soak determinism seed")

		calibFile      = flag.String("calib-file", "", "calibration snapshot path (default <model>.calib; \"off\" disables persistence)")
		driftWindow    = flag.Int("drift-window", 256, "scores per rolling drift window (0: disable drift monitoring)")
		driftRing      = flag.Int("drift-ring", 4, "rolling windows retained for drift statistics")
		driftMaxShift  = flag.Float64("drift-max-shift", 0.5, "relative quantile shift that trips the drift alert (negative: rule off)")
		driftFPRFactor = flag.Float64("drift-fpr-factor", 3, "operating-FPR deviation factor that trips the drift alert (negative: rule off)")

		traceSample = flag.Int("trace-sample", 0,
			"arm verdict provenance and deep-trace retention: keep every Nth connection's full error series per tenant (flagged connections always; 0: tracing off)")
		traceRing = flag.Int("trace-ring", 256, "decision records and deep traces retained per tenant")
		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof on this address (own listener, kept off the ops API; empty: disabled)")

		alerts      = flag.String("alerts", "", "write an alert log to this path (\"-\": stdout)")
		alertWindow = flag.Duration("alert-window", 30*time.Second, "suppress duplicate alerts per connection key within this window")
		alertRate   = flag.Int("alert-rate", 20, "cap alert lines per second (0: uncapped)")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain on shutdown")
	)
	var tenantFlags []tenantFlag
	flag.Func("tenant", "serve an extra tenant over the shared engine: name=model.bin[:threshold] (repeatable; -model stays the default tenant)", func(v string) error {
		tf, err := parseTenantFlag(v)
		if err != nil {
			return err
		}
		tenantFlags = append(tenantFlags, tf)
		return nil
	})
	var sourceSpecs []string
	flag.Func("source", "extra ingest source for the default tenant: afpacket:IFACE[:fanout-id] | tail:PATH | replay:PATH | soak:N[:rate[:attack]] (repeatable)", func(v string) error {
		if v == "" {
			return fmt.Errorf("-source: empty spec")
		}
		sourceSpecs = append(sourceSpecs, v)
		return nil
	})
	var tenantSources []tenantSourceFlag
	flag.Func("tenant-source", "ingest source for a tenant: name=afpacket:IFACE[:fanout-id] | name=tail:PATH | name=replay:PATH | name=soak:N[:rate[:attack]] (repeatable)", func(v string) error {
		name, spec, ok := strings.Cut(v, "=")
		if !ok || name == "" || spec == "" {
			return fmt.Errorf("-tenant-source %q: want name=kind:arg", v)
		}
		tenantSources = append(tenantSources, tenantSourceFlag{name: name, spec: spec})
		return nil
	})
	tenantQuotas := map[string]tenant.Quota{}
	flag.Func("tenant-quota", "fair-share quota for a tenant: name=maxinflight[:rate[:burst]] (repeatable; name may be \"default\")", func(v string) error {
		name, q, err := parseQuotaFlag(v)
		if err != nil {
			return err
		}
		tenantQuotas[name] = q
		return nil
	})
	flag.Parse()
	if *model == "" {
		log.Fatal("need -model")
	}

	b, err := clap.LoadBackendFile(*model)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	if *escalateFPR > 0 {
		cb, ok := b.(*clap.CascadeBackend)
		if !ok {
			log.Fatalf("-escalate-fpr applies to cascade models; %s is %q", *model, b.Tag())
		}
		if err := cb.SetEscalateFPR(*escalateFPR); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("loaded %s", b.Describe())

	lockstepWidth := *lockstep
	if lockstepWidth < 0 {
		lockstepWidth = clap.DefaultLockstep
	}
	cfg := serve.Config{
		Backend:        b,
		ModelPath:      *model,
		Addr:           *addr,
		Workers:        *workers,
		Shards:         *shards,
		Batch:          *batch,
		Lockstep:       lockstepWidth,
		Threshold:      *threshold,
		TopN:           *top,
		QueueDepth:     *queue,
		DropWhenFull:   *shed,
		IdleFlush:      *idle,
		DriftWindows:   *driftRing,
		DriftMaxShift:  *driftMaxShift,
		DriftFPRFactor: *driftFPRFactor,
		TraceSample:    *traceSample,
		TraceRing:      *traceRing,
		Logf:           log.Printf,
	}
	cfg.FPR = *fpr
	if *calibrate != "" {
		cfg.Calibration = clap.PCAPFile(*calibrate)
	}
	// The drift monitor's rolling-window size; 0 on the flag means "off"
	// (the Config encodes that as a negative value).
	cfg.DriftWindow = *driftWindow
	if *driftWindow == 0 {
		cfg.DriftWindow = -1
	}
	// Calibration snapshots live alongside the model file by default, so
	// a calibrated start persists its reference distribution and a
	// restart without -calibrate resumes from it.
	switch *calibFile {
	case "off":
	case "":
		cfg.CalibrationFile = *model + ".calib"
	default:
		cfg.CalibrationFile = *calibFile
	}
	if q, ok := tenantQuotas[serve.DefaultTenant]; ok {
		cfg.Quota = q
	}

	// Named tenants: each owns its model, threshold, calibration snapshot
	// and quota, while sharing the batched engine and ingest queue with
	// the default tenant. Named tenants persist calibration alongside
	// their own model file (-calib-file off disables that for all).
	for _, tf := range tenantFlags {
		tb, err := clap.LoadBackendFile(tf.model)
		if err != nil {
			log.Fatalf("tenant %s: loading model: %v", tf.name, err)
		}
		log.Printf("tenant %s: loaded %s", tf.name, tb.Describe())
		tc := serve.TenantConfig{
			Name:      tf.name,
			Backend:   tb,
			ModelPath: tf.model,
			Threshold: tf.threshold,
			Quota:     tenantQuotas[tf.name],
		}
		if *calibFile != "off" {
			tc.CalibrationFile = tf.model + ".calib"
		}
		cfg.Tenants = append(cfg.Tenants, tc)
	}

	// Alert sink: flagged results flow through the dedup+rate-limited log.
	if *alerts != "" {
		out := os.Stdout
		if *alerts != "-" {
			f, err := os.Create(*alerts)
			if err != nil {
				log.Fatalf("alert log: %v", err)
			}
			defer f.Close()
			out = f
		}
		if len(tenantFlags) == 0 {
			sink := clap.NewDedupAlertLog(out, *alertWindow, *alertRate)
			cfg.OnResult = func(r clap.Result) {
				if err := sink.Emit(r); err != nil {
					log.Printf("alert sink: %v", err)
				}
			}
			// Drift alerts land in the same log. Both hooks fire on the
			// stream's single emit goroutine, so the writes interleave
			// line-atomically with the dedup sink's.
			cfg.OnDriftAlert = func(st serve.DriftStatus) {
				fmt.Fprintf(out, "DRIFT ALERT %s (drift=%.4f operating-fpr=%.4f target-fpr=%.4f over %d scores)\n",
					st.Reason, st.Drift, st.OperatingFPR, st.TargetFPR, st.LiveCount)
			}
		} else {
			// Multi-tenant: one dedup sink per tenant, so one tenant's
			// duplicate suppression (keyed by 5-tuple) never masks
			// another tenant's alerts; named tenants' lines carry a
			// tenant= tag. All emits run on the stream's single emit
			// goroutine, so the per-tenant sinks need no locking.
			sinks := map[string]clap.Sink{
				serve.DefaultTenant: clap.NewDedupAlertLog(out, *alertWindow, *alertRate),
			}
			for _, tf := range tenantFlags {
				w := prefixWriter{w: out, prefix: "tenant=" + tf.name + " "}
				sinks[tf.name] = clap.NewDedupAlertLog(w, *alertWindow, *alertRate)
			}
			cfg.OnTenantResult = func(name string, r clap.Result) {
				sink := sinks[name]
				if sink == nil {
					return
				}
				if err := sink.Emit(r); err != nil {
					log.Printf("alert sink: %v", err)
				}
			}
			cfg.OnTenantDriftAlert = func(name string, st serve.DriftStatus) {
				tag := ""
				if name != serve.DefaultTenant {
					tag = "tenant=" + name + " "
				}
				fmt.Fprintf(out, "%sDRIFT ALERT %s (drift=%.4f operating-fpr=%.4f target-fpr=%.4f over %d scores)\n",
					tag, st.Reason, st.Drift, st.OperatingFPR, st.TargetFPR, st.LiveCount)
			}
		}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// IdleFlush deliberately stays off the LiveConfig here: the serving
	// layer plumbs cfg.IdleFlush into every compatible source at
	// AddSource, the per-source knob.
	live := clap.LiveConfig{MaxPackets: *budget, Poll: *poll}
	nSources := 0
	if *tail != "" {
		srv.AddSource(clap.TailPCAP(*tail, live))
		nSources++
	}
	if *stdin {
		srv.AddSource(clap.FollowPCAP("stdin", os.Stdin, live))
		nSources++
	}
	if *replay != "" {
		srv.AddSource(clap.Replay("replay:"+*replay, clap.PCAPFile(*replay)))
		nSources++
	}
	if *soak >= 0 {
		srv.AddSource(clap.Soak(clap.SoakConfig{
			Connections:    *soak,
			Seed:           *soakSeed,
			Rate:           *soakRate,
			AttackFraction: *soakAttack,
		}))
		nSources++
	}
	for _, spec := range sourceSpecs {
		src, err := sourceFor(spec, live, *soakSeed)
		if err != nil {
			log.Fatalf("-source %s: %v", spec, err)
		}
		srv.AddSource(src)
		nSources++
	}
	for _, ts := range tenantSources {
		src, err := sourceFor(ts.spec, live, *soakSeed)
		if err != nil {
			log.Fatalf("-tenant-source %s: %v", ts.name, err)
		}
		if err := srv.AddTenantSource(ts.name, src); err != nil {
			log.Fatal(err)
		}
		nSources++
	}
	if nSources == 0 {
		log.Fatal("no ingest source: need -source, -tail, -stdin, -replay, -soak or -tenant-source")
	}

	if err := srv.Start(context.Background()); err != nil {
		log.Fatal(err)
	}

	// The pprof surface gets its own mux and listener, never the ops API's:
	// profiling endpoints stay bindable to a loopback/debug interface while
	// the ops port is scraped by monitoring, and an unset -debug-addr
	// exposes no profiling at all (importing net/http/pprof registers on
	// DefaultServeMux, which neither listener serves).
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	// SIGHUP reloads the model in place; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-hup:
			if _, after, err := srv.Reload(""); err != nil {
				log.Printf("SIGHUP reload failed: %v", err)
			} else {
				log.Printf("SIGHUP reload ok: now serving %s (generation %d)", after.Tag, after.Generation)
			}
		case sig := <-stop:
			log.Printf("%s: draining...", sig)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				log.Fatalf("shutdown: %v", err)
			}
			return
		}
	}
}
