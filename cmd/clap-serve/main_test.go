package main

import (
	"strings"
	"testing"
	"time"

	"clap"
)

// TestSourceFor pins the -source/-tenant-source spec grammar, including
// the afpacket form. Building an afpacket source performs no privileged
// work — the socket opens at Stream time — so the parse is testable
// anywhere.
func TestSourceFor(t *testing.T) {
	live := clap.LiveConfig{Poll: 10 * time.Millisecond}
	for _, tc := range []struct {
		spec    string
		name    string // expected Name() of the built source; "" expects an error
		errPart string
	}{
		{spec: "afpacket:eth0", name: "afpacket:eth0"},
		{spec: "afpacket:eth0:42", name: "afpacket:eth0"},
		{spec: "afpacket:", errPart: "needs an interface"},
		{spec: "afpacket:eth0:notanum", errPart: "bad fanout id"},
		{spec: "afpacket:eth0:70000", errPart: "bad fanout id"},
		{spec: "afpacket:eth0:-1", errPart: "bad fanout id"},
		{spec: "tail:/tmp/x.pcap", name: "tail:/tmp/x.pcap"},
		{spec: "replay:/tmp/x.pcap", name: "replay:/tmp/x.pcap"},
		{spec: "soak:5", name: "soak"},
		{spec: "nonsense:x", errPart: "unknown source kind"},
	} {
		src, err := sourceFor(tc.spec, live, 1)
		if tc.name == "" {
			if err == nil || !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("sourceFor(%q) error = %v, want containing %q", tc.spec, err, tc.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("sourceFor(%q): %v", tc.spec, err)
			continue
		}
		if !strings.HasPrefix(src.Name(), tc.name) {
			t.Errorf("sourceFor(%q).Name() = %q, want prefix %q", tc.spec, src.Name(), tc.name)
		}
	}
}
