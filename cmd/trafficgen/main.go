// Command trafficgen writes a synthetic benign backbone-style capture — the
// repository's stand-in for a MAWI trace — to a pcap file, using the
// pipeline's TrafficGen source.
//
// Usage:
//
//	trafficgen -out benign.pcap -connections 500 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"

	"clap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficgen: ")
	var (
		out   = flag.String("out", "benign.pcap", "output pcap path")
		conns = flag.Int("connections", 500, "number of connections to generate")
		seed  = flag.Int64("seed", 1, "deterministic generator seed")
		raw   = flag.Bool("raw", false, "write LINKTYPE_RAW instead of Ethernet")
	)
	flag.Parse()

	generated, _, err := clap.TrafficGen(*conns, *seed).Connections(nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := clap.WritePCAPFile(*out, generated, *raw); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	packets := 0
	for _, c := range generated {
		packets += c.Len()
	}
	fmt.Printf("wrote %s: %d connections, %d packets (seed %d)\n",
		*out, len(generated), packets, *seed)
}
