// Command trafficgen writes a synthetic benign backbone-style capture — the
// repository's stand-in for a MAWI trace — to a pcap file.
//
// Usage:
//
//	trafficgen -out benign.pcap -connections 500 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clap/internal/flow"
	"clap/internal/pcapio"
	"clap/internal/trafficgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficgen: ")
	var (
		out   = flag.String("out", "benign.pcap", "output pcap path")
		conns = flag.Int("connections", 500, "number of connections to generate")
		seed  = flag.Int64("seed", 1, "deterministic generator seed")
		raw   = flag.Bool("raw", false, "write LINKTYPE_RAW instead of Ethernet")
	)
	flag.Parse()

	cfg := trafficgen.DefaultConfig(*conns)
	cfg.Seed = *seed
	generated := trafficgen.Generate(cfg)
	pkts := flow.Flatten(generated)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	linkType := uint32(pcapio.LinkTypeEthernet)
	if *raw {
		linkType = pcapio.LinkTypeRaw
	}
	w := pcapio.NewWriter(f, linkType)
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			log.Fatalf("writing packet: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	stats := flow.Census(generated)
	fmt.Printf("wrote %s: %d connections, %d packets (seed %d)\n",
		*out, stats.Connections, stats.Packets, *seed)
}
