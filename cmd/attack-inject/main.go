// Command attack-inject applies a DPI evasion strategy from the 73-strategy
// corpus to connections in a benign capture and writes the adversarial
// capture plus a ground-truth index.
//
// Usage:
//
//	attack-inject -in benign.pcap -out adv.pcap \
//	    -strategy "GFW: Injected RST Bad TCP-Checksum/MD5-Option" -fraction 0.5
//	attack-inject -list
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"clap/internal/attacks"
	"clap/internal/flow"
	"clap/internal/pcapio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attack-inject: ")
	var (
		in       = flag.String("in", "", "input benign pcap")
		out      = flag.String("out", "adversarial.pcap", "output pcap path")
		name     = flag.String("strategy", "", "strategy name (see -list)")
		fraction = flag.Float64("fraction", 1.0, "fraction of eligible connections to attack")
		seed     = flag.Int64("seed", 1, "attack randomisation seed")
		list     = flag.Bool("list", false, "list all strategies and exit")
		truth    = flag.String("truth", "", "optional path for the ground-truth index (text)")
	)
	flag.Parse()

	if *list {
		for _, s := range attacks.All() {
			fmt.Printf("[%-8s] [%s] %s\n    %s\n", s.Source, s.Category, s.Name, s.Description)
		}
		return
	}
	if *in == "" || *name == "" {
		log.Fatal("need -in and -strategy (or -list)")
	}
	strategy, ok := attacks.ByName(*name)
	if !ok {
		log.Fatalf("unknown strategy %q (use -list)", *name)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	pkts, skipped, err := pcapio.ReadPackets(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading %s: %v", *in, err)
	}
	conns := flow.Assemble(pkts)
	log.Printf("read %d connections (%d packets, %d records skipped)", len(conns), len(pkts), skipped)

	rng := rand.New(rand.NewSource(*seed))
	attacked := 0
	for _, c := range conns {
		if rng.Float64() > *fraction {
			continue
		}
		if strategy.Apply(c, rng) {
			c.AttackName = strategy.Name
			attacked++
		}
	}

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := pcapio.NewWriter(of, pcapio.LinkTypeEthernet)
	for _, p := range flow.Flatten(conns) {
		if err := w.WritePacket(p); err != nil {
			log.Fatalf("writing packet: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacked %d/%d connections with %q -> %s\n", attacked, len(conns), strategy.Name, *out)

	if *truth != "" {
		tf, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range conns {
			if c.IsAdversarial() {
				fmt.Fprintf(tf, "%s\tpackets=%v\n", c.Key, c.AdvIdx)
			}
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ground truth written to %s\n", *truth)
	}
}
