// Command attack-inject applies a DPI evasion strategy from the 73-strategy
// corpus to connections in a benign capture — the pipeline's AttackCorpus
// source over a pcap file — and writes the adversarial capture plus a
// ground-truth index.
//
// Usage:
//
//	attack-inject -in benign.pcap -out adv.pcap \
//	    -strategy "GFW: Injected RST Bad TCP-Checksum/MD5-Option" -fraction 0.5
//	attack-inject -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attack-inject: ")
	var (
		in       = flag.String("in", "", "input benign pcap")
		out      = flag.String("out", "adversarial.pcap", "output pcap path")
		name     = flag.String("strategy", "", "strategy name (see -list)")
		fraction = flag.Float64("fraction", 1.0, "fraction of eligible connections to attack")
		seed     = flag.Int64("seed", 1, "attack randomisation seed")
		list     = flag.Bool("list", false, "list all strategies and exit")
		truth    = flag.String("truth", "", "optional path for the ground-truth index (text)")
	)
	flag.Parse()

	if *list {
		for _, s := range clap.Attacks() {
			fmt.Printf("[%-8s] [%s] %s\n    %s\n", s.Source, s.Category, s.Name, s.Description)
		}
		return
	}
	if *in == "" || *name == "" {
		log.Fatal("need -in and -strategy (or -list)")
	}
	if _, ok := clap.AttackByName(*name); !ok {
		log.Fatalf("unknown strategy %q (use -list)", *name)
	}

	src := clap.AttackCorpus(clap.PCAPFile(*in), *name, *fraction, *seed)
	conns, skipped, err := src.Connections(clap.NewEngine(0))
	if err != nil {
		log.Fatal(err)
	}
	packets, attacked := 0, 0
	for _, c := range conns {
		packets += c.Len()
		if c.IsAdversarial() {
			attacked++
		}
	}
	log.Printf("read %d connections (%d packets after injection, %d records skipped)", len(conns), packets, skipped)

	if err := clap.WritePCAPFile(*out, conns, false); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("attacked %d/%d connections with %q -> %s\n", attacked, len(conns), *name, *out)

	if *truth != "" {
		tf, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range conns {
			if c.IsAdversarial() {
				fmt.Fprintf(tf, "%s\tpackets=%v\n", c.Key, c.AdvIdx)
			}
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ground truth written to %s\n", *truth)
	}
}
