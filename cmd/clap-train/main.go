// Command clap-train trains a detection backend from a benign pcap capture
// and persists it (with the tagged backend header) to disk. Any registered
// backend works: CLAP, the context-agnostic Baseline #1, or the Kitsune
// ensemble-AE IDS.
//
// Usage:
//
//	clap-train -in benign.pcap -model clap.model -rnn-epochs 14 -ae-epochs 30
//	clap-train -in benign.pcap -model b1.model -backend baseline1
//	clap-train -in benign.pcap -model kit.model -backend kitsune
//	clap-train -in benign.pcap -model tier.model \
//	        -backend cascade:baseline1+clap -escalate-fpr 0.05
package main

import (
	"flag"
	"fmt"
	"log"

	"clap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-train: ")
	var (
		in         = flag.String("in", "", "benign training pcap")
		model      = flag.String("model", "clap.model", "output model path")
		backendTag = flag.String("backend", clap.BackendCLAP,
			fmt.Sprintf("detection backend to train %v, or cascade:stage1+stage2", clap.BackendTags()))
		seed        = flag.Int64("seed", 1, "training seed")
		rnnEpochs   = flag.Int("rnn-epochs", 14, "RNN training epochs (clap/baseline1)")
		aeEpochs    = flag.Int("ae-epochs", 30, "autoencoder training epochs (clap/baseline1)")
		escalateFPR = flag.Float64("escalate-fpr", 0.05,
			"cascade backends: target fraction of benign traffic escalated to the expensive stage")
		baseline1 = flag.Bool("baseline1", false, "deprecated: same as -backend baseline1")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("need -in (generate one with trafficgen)")
	}
	tag := *backendTag
	if *baseline1 {
		backendSet := false
		flag.Visit(func(f *flag.Flag) { backendSet = backendSet || f.Name == "backend" })
		if backendSet && tag != clap.BackendBaseline1 {
			log.Fatalf("-baseline1 conflicts with -backend %s", tag)
		}
		tag = clap.BackendBaseline1
	}

	b, err := clap.NewBackendSpec(tag)
	if err != nil {
		log.Fatal(err)
	}
	// Apply the training knobs to every CLAP-family model in the backend —
	// both stages of a cascade included.
	var configure func(clap.Backend)
	configure = func(b clap.Backend) {
		switch bk := b.(type) {
		case *clap.CLAPBackend:
			bk.Cfg.Seed = *seed
			bk.Cfg.RNNEpochs = *rnnEpochs
			bk.Cfg.AEEpochs = *aeEpochs
		case *clap.KitsuneBackend:
			bk.Cfg.Seed = *seed
		case *clap.CascadeBackend:
			if err := bk.SetEscalateFPR(*escalateFPR); err != nil {
				log.Fatal(err)
			}
			s1, s2 := bk.Stages()
			configure(s1)
			configure(s2)
		}
	}
	configure(b)

	eng := clap.NewEngine(0)
	conns, skipped, err := clap.PCAPFile(*in).Connections(eng)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("read %d connections (%d records skipped)", len(conns), skipped)

	logf := func(format string, args ...any) { log.Printf(format, args...) }
	if *quiet {
		logf = func(string, ...any) {}
	}
	if err := b.Train(conns, logf); err != nil {
		log.Fatalf("training %s: %v", tag, err)
	}
	if err := clap.SaveBackendFile(*model, b); err != nil {
		log.Fatalf("saving model: %v", err)
	}
	fmt.Printf("trained %s\nsaved to %s\n", b.Describe(), *model)
}
