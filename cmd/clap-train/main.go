// Command clap-train trains a CLAP detector from a benign pcap capture and
// persists it (feature profile + RNN + autoencoder) to disk.
//
// Usage:
//
//	clap-train -in benign.pcap -model clap.model -rnn-epochs 14 -ae-epochs 30
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clap/internal/core"
	"clap/internal/flow"
	"clap/internal/pcapio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-train: ")
	var (
		in        = flag.String("in", "", "benign training pcap")
		model     = flag.String("model", "clap.model", "output model path")
		seed      = flag.Int64("seed", 1, "training seed")
		rnnEpochs = flag.Int("rnn-epochs", 14, "RNN training epochs")
		aeEpochs  = flag.Int("ae-epochs", 30, "autoencoder training epochs")
		baseline1 = flag.Bool("baseline1", false, "train the context-agnostic Baseline #1 instead of CLAP")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("need -in (generate one with trafficgen)")
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	pkts, skipped, err := pcapio.ReadPackets(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading %s: %v", *in, err)
	}
	conns := flow.Assemble(pkts)
	log.Printf("read %d connections (%d packets, %d records skipped)", len(conns), len(pkts), skipped)

	cfg := core.DefaultConfig()
	if *baseline1 {
		cfg = core.Baseline1Config()
	}
	cfg.Seed = *seed
	cfg.RNNEpochs = *rnnEpochs
	cfg.AEEpochs = *aeEpochs

	logf := core.Logf(func(format string, args ...any) { log.Printf(format, args...) })
	if *quiet {
		logf = nil
	}
	det, err := core.Train(conns, cfg, logf)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	if err := det.SaveFile(*model); err != nil {
		log.Fatalf("saving model: %v", err)
	}
	fmt.Printf("trained %v\nsaved to %s\n", det, *model)
}
