// Command clap-train trains a detection backend from a benign pcap capture
// and persists it (with the tagged backend header) to disk. Any registered
// backend works: CLAP, the context-agnostic Baseline #1, or the Kitsune
// ensemble-AE IDS.
//
// Usage:
//
//	clap-train -in benign.pcap -model clap.model -rnn-epochs 14 -ae-epochs 30
//	clap-train -in benign.pcap -model b1.model -backend baseline1
//	clap-train -in benign.pcap -model kit.model -backend kitsune
package main

import (
	"flag"
	"fmt"
	"log"

	"clap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-train: ")
	var (
		in         = flag.String("in", "", "benign training pcap")
		model      = flag.String("model", "clap.model", "output model path")
		backendTag = flag.String("backend", clap.BackendCLAP,
			fmt.Sprintf("detection backend to train %v", clap.BackendTags()))
		seed      = flag.Int64("seed", 1, "training seed")
		rnnEpochs = flag.Int("rnn-epochs", 14, "RNN training epochs (clap/baseline1)")
		aeEpochs  = flag.Int("ae-epochs", 30, "autoencoder training epochs (clap/baseline1)")
		baseline1 = flag.Bool("baseline1", false, "deprecated: same as -backend baseline1")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("need -in (generate one with trafficgen)")
	}
	tag := *backendTag
	if *baseline1 {
		backendSet := false
		flag.Visit(func(f *flag.Flag) { backendSet = backendSet || f.Name == "backend" })
		if backendSet && tag != clap.BackendBaseline1 {
			log.Fatalf("-baseline1 conflicts with -backend %s", tag)
		}
		tag = clap.BackendBaseline1
	}

	b, err := clap.NewBackend(tag)
	if err != nil {
		log.Fatal(err)
	}
	switch bk := b.(type) {
	case *clap.CLAPBackend:
		bk.Cfg.Seed = *seed
		bk.Cfg.RNNEpochs = *rnnEpochs
		bk.Cfg.AEEpochs = *aeEpochs
	case *clap.KitsuneBackend:
		bk.Cfg.Seed = *seed
	}

	eng := clap.NewEngine(0)
	conns, skipped, err := clap.PCAPFile(*in).Connections(eng)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("read %d connections (%d records skipped)", len(conns), skipped)

	logf := func(format string, args ...any) { log.Printf(format, args...) }
	if *quiet {
		logf = func(string, ...any) {}
	}
	if err := b.Train(conns, logf); err != nil {
		log.Fatalf("training %s: %v", tag, err)
	}
	if err := clap.SaveBackendFile(*model, b); err != nil {
		log.Fatalf("saving model: %v", err)
	}
	fmt.Printf("trained %s\nsaved to %s\n", b.Describe(), *model)
}
