package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func art(results ...sample) *artifact {
	return &artifact{PR: 4, Profile: "tiny", GOMAXPROCS: 1, Results: results}
}

func TestGatePassesOnSpeedup(t *testing.T) {
	oldArt := art(sample{Backend: "clap", Workers: 1, PktsPerSec: 10000})
	newArt := art(
		sample{Backend: "clap", Workers: 1, Batch: 1, PktsPerSec: 9500},
		sample{Backend: "clap", Workers: 1, Batch: 64, PktsPerSec: 25000},
	)
	v, err := gate(oldArt, newArt, "clap", 1, 0.10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Failures != nil {
		t.Fatalf("gate failed: %v", v.Failures)
	}
	if v.Best != 25000 || v.BestBatch != 64 {
		t.Fatalf("picked %v (batch %d), want the batched 25000 sample", v.Best, v.BestBatch)
	}
	if v.Speedup != 2.5 {
		t.Fatalf("speedup %v, want 2.5", v.Speedup)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	oldArt := art(sample{Backend: "clap", Workers: 1, PktsPerSec: 10000})
	newArt := art(sample{Backend: "clap", Workers: 1, Batch: 64, PktsPerSec: 8000})
	v, err := gate(oldArt, newArt, "clap", 1, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Failures) != 1 || !strings.Contains(v.Failures[0], "REGRESSION") {
		t.Fatalf("failures = %v, want one REGRESSION", v.Failures)
	}
}

func TestGateFailsBelowSpeedupFloor(t *testing.T) {
	oldArt := art(sample{Backend: "clap", Workers: 1, PktsPerSec: 10000})
	newArt := art(sample{Backend: "clap", Workers: 1, Batch: 64, PktsPerSec: 15000})
	v, err := gate(oldArt, newArt, "clap", 1, 0.10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Failures) != 1 || !strings.Contains(v.Failures[0], "SPEEDUP FLOOR") {
		t.Fatalf("failures = %v, want one SPEEDUP FLOOR", v.Failures)
	}
}

func TestGateMissingCell(t *testing.T) {
	oldArt := art(sample{Backend: "clap", Workers: 1, PktsPerSec: 10000})
	newArt := art(sample{Backend: "kitsune", Workers: 1, PktsPerSec: 10000})
	if _, err := gate(oldArt, newArt, "clap", 1, 0.10, 0); err == nil {
		t.Fatal("missing cell accepted")
	}
	if _, err := gate(newArt, oldArt, "clap", 1, 0.10, 0); err == nil {
		t.Fatal("missing baseline cell accepted")
	}
}

// TestReadArtifactRoundTrip reads the committed PR3 snapshot format (no
// batch field) and a PR4-shaped file.
func TestReadArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pr3 := filepath.Join(dir, "old.json")
	if err := os.WriteFile(pr3, []byte(`{
  "pr": 3, "profile": "tiny", "gomaxprocs": 1,
  "results": [{"backend": "clap", "workers": 1, "pkts_per_sec": 11722.6}]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := readArtifact(pr3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Results[0].Batch != 0 || a.Results[0].PktsPerSec != 11722.6 {
		t.Fatalf("parsed %+v", a.Results[0])
	}
	if _, err := readArtifact(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"pr": 4, "results": []}`), 0o644)
	if _, err := readArtifact(empty); err == nil {
		t.Fatal("empty results accepted")
	}
}

func TestRatioGate(t *testing.T) {
	a := art(
		sample{Backend: "clap", Workers: 1, Batch: 1, PktsPerSec: 20000},
		sample{Backend: "clap", Workers: 1, Batch: 24, PktsPerSec: 30000},
		sample{Backend: "cascade", Workers: 1, Batch: 1, PktsPerSec: 180000},
	)
	v, err := ratioGate(a, "cascade", "clap", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Failures != nil {
		t.Fatalf("ratio gate failed: %v", v.Failures)
	}
	// The denominator is the best clap cell (the batched 30000 sample).
	if v.Ratio != 6 {
		t.Fatalf("ratio %v, want 6 (180000 / best clap 30000)", v.Ratio)
	}

	v, err = ratioGate(a, "cascade", "clap", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Failures) != 1 || !strings.Contains(v.Failures[0], "RATIO FLOOR") {
		t.Fatalf("failures = %v, want one RATIO FLOOR", v.Failures)
	}

	if _, err := ratioGate(a, "cascade", "kitsune", 1, 5); err == nil {
		t.Fatal("missing denominator cell accepted")
	}
	if _, err := ratioGate(a, "nope", "clap", 1, 5); err == nil {
		t.Fatal("missing numerator cell accepted")
	}
}

func TestLockstepGate(t *testing.T) {
	a := art(
		sample{Backend: "clap", Workers: 1, Batch: 1, PktsPerSec: 8000},
		sample{Backend: "clap", Workers: 1, Batch: 24, PktsPerSec: 21000},
		sample{Backend: "clap", Workers: 1, Batch: 24, Lockstep: 6, PktsPerSec: 22000},
		sample{Backend: "clap", Workers: 1, Batch: 24, Lockstep: 24, PktsPerSec: 20000},
	)
	v, err := lockstepGate(a, "clap", 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Failures != nil {
		t.Fatalf("lockstep gate failed: %v", v.Failures)
	}
	// Numerator: best lockstep row (22000). Denominator: the
	// per-connection serial row (batch<=1, 8000) — NOT the batched
	// serial 21000 sample.
	if v.Num != 22000 || v.Den != 8000 {
		t.Fatalf("picked %v / %v, want 22000 / 8000", v.Num, v.Den)
	}

	v, err = lockstepGate(a, "clap", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Failures) != 1 || !strings.Contains(v.Failures[0], "LOCKSTEP FLOOR") {
		t.Fatalf("failures = %v, want one LOCKSTEP FLOOR", v.Failures)
	}

	noLS := art(sample{Backend: "clap", Workers: 1, Batch: 1, PktsPerSec: 8000})
	if _, err := lockstepGate(noLS, "clap", 1, 1.5); err == nil {
		t.Fatal("missing lockstep cell accepted")
	}
	noSerial := art(sample{Backend: "clap", Workers: 1, Batch: 24, Lockstep: 24, PktsPerSec: 20000})
	if _, err := lockstepGate(noSerial, "clap", 1, 1.5); err == nil {
		t.Fatal("missing per-connection serial cell accepted")
	}
}

// TestLockstepRowsStaySeparate pins that fleet-stepped samples never leak
// into the serial selections: the regression gate and the cross-backend
// ratio gate must compare the per-connection deployment mode only.
func TestLockstepRowsStaySeparate(t *testing.T) {
	oldArt := art(sample{Backend: "clap", Workers: 1, PktsPerSec: 10000})
	newArt := art(
		sample{Backend: "clap", Workers: 1, Batch: 24, PktsPerSec: 12000},
		sample{Backend: "clap", Workers: 1, Batch: 24, Lockstep: 24, PktsPerSec: 50000},
		sample{Backend: "cascade", Workers: 1, Batch: 1, PktsPerSec: 60000},
	)
	v, err := gate(oldArt, newArt, "clap", 1, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Best != 12000 {
		t.Fatalf("regression gate picked %v, want the lockstep-free 12000 sample", v.Best)
	}
	rv, err := ratioGate(newArt, "cascade", "clap", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Den != 12000 {
		t.Fatalf("ratio gate denominator %v, want the lockstep-free 12000 sample", rv.Den)
	}
}
