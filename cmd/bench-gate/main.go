// Command bench-gate is the benchmark regression gate: it compares a
// fresh BenchmarkBackendThroughput artifact (BENCH_pr9.json) against a
// committed baseline snapshot and fails — exit
// status 1 — when the watched backend's serial throughput regresses by
// more than the allowed fraction. CI runs it after the bench smoke so a
// PR that slows the hot path down fails loudly instead of silently
// bending the BENCH trajectory.
//
// The new artifact may carry several batch variants per backend/workers
// cell; the gate takes the best of them (the deployed default is the
// batched path) and also reports the speedup over the baseline.
//
// -ratio additionally asserts a cross-backend throughput ratio within
// the fresh artifact — the cascade's contract is that its serial
// benign-heavy throughput stays at least 5x pure clap's.
//
// -lockstep-ratio asserts, also within the fresh artifact, that a
// backend's best fleet-stepped (lockstep > 0) throughput holds a floor
// over its own best per-connection throughput — the cross-connection
// lockstep refactor must keep paying for itself. Both within-artifact
// checks compare samples from the same run on the same machine, so
// runner hardware variance cancels.
//
// Usage:
//
//	bench-gate -old BENCH_pr4.json -new BENCH_pr9.json
//	bench-gate -old BENCH_pr4.json -new BENCH_pr9.json -max-regress 0.10 -min-speedup 2
//	bench-gate -new BENCH_pr9.json -ratio cascade/clap -min-ratio 5
//	bench-gate -new BENCH_pr9.json -lockstep-ratio clap -min-lockstep-ratio 1.5
package main

import (
	"flag"
	"log"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-gate: ")
	var (
		oldPath    = flag.String("old", "", "baseline bench artifact (committed snapshot)")
		newPath    = flag.String("new", "", "fresh bench artifact to gate")
		backendTag = flag.String("backend", "clap", "backend whose throughput is gated")
		workers    = flag.Int("workers", 1, "worker count of the gated cell (1: serial)")
		maxRegress = flag.Float64("max-regress", 0.10, "fail if best new pkts/s falls below (1-max-regress) x baseline")
		minSpeedup = flag.Float64("min-speedup", 0, "additionally fail below this new/old speedup (0: no floor)")
		ratioSpec  = flag.String("ratio", "", "cross-backend ratio to check within -new, as num/den (e.g. cascade/clap)")
		minRatio   = flag.Float64("min-ratio", 0, "fail when the -ratio pair's throughput ratio is below this floor (0: no floor)")
		lsTag      = flag.String("lockstep-ratio", "", "backend whose lockstep/serial throughput ratio is checked within -new (e.g. clap)")
		minLSRatio = flag.Float64("min-lockstep-ratio", 0, "fail when the -lockstep-ratio backend's lockstep/serial ratio is below this floor (0: no floor)")
	)
	flag.Parse()
	if *newPath == "" {
		log.Fatal("need -new")
	}
	if *oldPath == "" && *ratioSpec == "" && *lsTag == "" {
		log.Fatal("need -old (or -ratio / -lockstep-ratio for a ratio-only check)")
	}

	newArt, err := readArtifact(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	failed := false
	if *oldPath != "" {
		oldArt, err := readArtifact(*oldPath)
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := gate(oldArt, newArt, *backendTag, *workers, *maxRegress, *minSpeedup)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s workers=%d: baseline %.0f pkts/s (pr %d), best new %.0f pkts/s (batch=%d, pr %d): %.2fx",
			*backendTag, *workers, verdict.Baseline, oldArt.PR, verdict.Best, verdict.BestBatch, newArt.PR, verdict.Speedup)
		for _, f := range verdict.Failures {
			log.Print(f)
		}
		failed = failed || verdict.Failures != nil
	}
	if *ratioSpec != "" {
		num, den, ok := strings.Cut(*ratioSpec, "/")
		if !ok || num == "" || den == "" {
			log.Fatalf("-ratio %q: want num/den (e.g. cascade/clap)", *ratioSpec)
		}
		rv, err := ratioGate(newArt, num, den, *workers, *minRatio)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s/%s workers=%d: %.0f vs %.0f pkts/s: %.2fx (floor %.2fx)",
			num, den, *workers, rv.Num, rv.Den, rv.Ratio, *minRatio)
		for _, f := range rv.Failures {
			log.Print(f)
		}
		failed = failed || rv.Failures != nil
	}
	if *lsTag != "" {
		lv, err := lockstepGate(newArt, *lsTag, *workers, *minLSRatio)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("%s lockstep/serial workers=%d: %.0f vs %.0f pkts/s: %.2fx (floor %.2fx)",
			*lsTag, *workers, lv.Num, lv.Den, lv.Ratio, *minLSRatio)
		for _, f := range lv.Failures {
			log.Print(f)
		}
		failed = failed || lv.Failures != nil
	}
	if failed {
		log.Fatal("benchmark gate FAILED")
	}
	log.Print("benchmark gate passed")
}
