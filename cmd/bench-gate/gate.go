package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// artifact mirrors the JSON BenchmarkBackendThroughput writes. Batch is
// absent in pre-PR4 snapshots (those rows are the unbatched path).
type artifact struct {
	PR         int      `json:"pr"`
	Profile    string   `json:"profile"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []sample `json:"results"`
}

type sample struct {
	Backend    string  `json:"backend"`
	Workers    int     `json:"workers"`
	Batch      int     `json:"batch,omitempty"`
	Lockstep   int     `json:"lockstep,omitempty"` // 0/absent: per-connection recurrences (pre-PR9 snapshots)
	PktsPerSec float64 `json:"pkts_per_sec"`
}

func readArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(a.Results) == 0 {
		return nil, fmt.Errorf("%s holds no bench results", path)
	}
	return &a, nil
}

// verdict is one gate evaluation.
type verdict struct {
	Baseline  float64  // baseline pkts/s (best matching cell of the old artifact)
	Best      float64  // best matching pkts/s in the new artifact
	BestBatch int      // batch size of that best sample
	Speedup   float64  // Best / Baseline
	Failures  []string // non-nil when the gate fails
}

// best returns the highest-throughput sample for one backend/workers cell
// across its batch variants; ok is false when the cell is absent.
// lockstepOn selects the fleet-stepped rows (Lockstep > 0) or the
// per-connection rows (Lockstep == 0; all rows of pre-PR9 artifacts) —
// the two are separate deployment modes, so a gate never mixes them.
func best(a *artifact, backendTag string, workers int, lockstepOn bool) (sample, bool) {
	var top sample
	found := false
	for _, s := range a.Results {
		if s.Backend != backendTag || s.Workers != workers || (s.Lockstep > 0) != lockstepOn {
			continue
		}
		if !found || s.PktsPerSec > top.PktsPerSec {
			top, found = s, true
		}
	}
	return top, found
}

// gate compares the fresh artifact against the baseline for one
// backend/workers cell.
func gate(oldArt, newArt *artifact, backendTag string, workers int, maxRegress, minSpeedup float64) (verdict, error) {
	base, ok := best(oldArt, backendTag, workers, false)
	if !ok {
		return verdict{}, fmt.Errorf("baseline has no %s workers=%d sample", backendTag, workers)
	}
	top, ok := best(newArt, backendTag, workers, false)
	if !ok {
		return verdict{}, fmt.Errorf("fresh artifact has no %s workers=%d sample", backendTag, workers)
	}
	v := verdict{Baseline: base.PktsPerSec, Best: top.PktsPerSec, BestBatch: top.Batch,
		Speedup: top.PktsPerSec / base.PktsPerSec}
	if floor := base.PktsPerSec * (1 - maxRegress); top.PktsPerSec < floor {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"REGRESSION: %.0f pkts/s is below the %.0f floor (baseline %.0f, max regress %.0f%%)",
			top.PktsPerSec, floor, base.PktsPerSec, maxRegress*100))
	}
	if minSpeedup > 0 && v.Speedup < minSpeedup {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"SPEEDUP FLOOR: %.2fx is below the required %.2fx", v.Speedup, minSpeedup))
	}
	return v, nil
}

// ratioVerdict is one cross-backend ratio evaluation inside a single
// artifact.
type ratioVerdict struct {
	Num, Den float64  // pkts/s of the numerator and denominator backends
	Ratio    float64  // Num / Den
	Failures []string // non-nil when the floor is not met
}

// ratioGate asserts that backend numTag's throughput is at least minRatio
// times backend denTag's within one artifact (same worker count, best
// across batch variants) — e.g. the cascade's required serial speedup
// over pure clap on the benign-heavy profile.
func ratioGate(a *artifact, numTag, denTag string, workers int, minRatio float64) (ratioVerdict, error) {
	num, ok := best(a, numTag, workers, false)
	if !ok {
		return ratioVerdict{}, fmt.Errorf("artifact has no %s workers=%d sample", numTag, workers)
	}
	den, ok := best(a, denTag, workers, false)
	if !ok {
		return ratioVerdict{}, fmt.Errorf("artifact has no %s workers=%d sample", denTag, workers)
	}
	v := ratioVerdict{Num: num.PktsPerSec, Den: den.PktsPerSec, Ratio: num.PktsPerSec / den.PktsPerSec}
	if minRatio > 0 && v.Ratio < minRatio {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"RATIO FLOOR: %s is %.2fx %s (%.0f vs %.0f pkts/s), below the required %.2fx",
			numTag, v.Ratio, denTag, v.Num, v.Den, minRatio))
	}
	return v, nil
}

// lockstepGate asserts that backend tag's best fleet-stepped throughput
// (lockstep > 0, best across batch and width variants) is at least
// minRatio times its per-connection serial throughput (batch <= 1,
// lockstep off — the one-recurrence-at-a-time path the fleet refactor
// replaced) within one artifact at the same worker count. Same run, same
// machine, so hardware variance cancels. The batched-but-serial rows are
// deliberately not the denominator: on small CI boxes they sit within
// noise of the fleet rows, and the contract being held is that fleet
// stepping keeps beating the per-connection path, not batch-size tuning.
func lockstepGate(a *artifact, tag string, workers int, minRatio float64) (ratioVerdict, error) {
	num, ok := best(a, tag, workers, true)
	if !ok {
		return ratioVerdict{}, fmt.Errorf("artifact has no %s workers=%d lockstep sample", tag, workers)
	}
	var den sample
	found := false
	for _, s := range a.Results {
		if s.Backend != tag || s.Workers != workers || s.Lockstep > 0 || s.Batch > 1 {
			continue
		}
		if !found || s.PktsPerSec > den.PktsPerSec {
			den, found = s, true
		}
	}
	if !found {
		return ratioVerdict{}, fmt.Errorf("artifact has no %s workers=%d per-connection serial sample", tag, workers)
	}
	v := ratioVerdict{Num: num.PktsPerSec, Den: den.PktsPerSec, Ratio: num.PktsPerSec / den.PktsPerSec}
	if minRatio > 0 && v.Ratio < minRatio {
		v.Failures = append(v.Failures, fmt.Sprintf(
			"LOCKSTEP FLOOR: %s lockstep=%d is %.2fx its serial path (%.0f vs %.0f pkts/s), below the required %.2fx",
			tag, num.Lockstep, v.Ratio, v.Num, v.Den, minRatio))
	}
	return v, nil
}
