// Command clap-eval reproduces the paper's full evaluation in one shot:
// dataset generation, training of CLAP and both baselines, detection and
// localization over all 73 evasion strategies, and every table and figure
// of §4 rendered to stdout (or a file).
//
// Usage:
//
//	clap-eval -profile fast
//	clap-eval -profile full -out report.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clap/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-eval: ")
	var (
		profile = flag.String("profile", "fast", "evaluation scale: tiny, fast or full")
		out     = flag.String("out", "", "write the report to a file instead of stdout")
		seed    = flag.Int64("seed", 1, "experiment seed")
		quiet   = flag.Bool("quiet", false, "suppress training progress")
		workers = flag.Int("workers", 0, "scoring workers (0: all cores); scores are identical at any count")
	)
	flag.Parse()

	opts := eval.OptionsFor(eval.Profile(*profile))
	opts.Seed = *seed
	opts.Workers = *workers

	logf := func(format string, args ...any) { log.Printf(format, args...) }
	if *quiet {
		logf = nil
	}
	suite, err := eval.BuildSuite(opts, logf)
	if err != nil {
		log.Fatal(err)
	}
	// The suite trains every backend registered for the comparison; report
	// times generically so a fourth backend shows up without CLI changes.
	for _, tag := range suite.Tags() {
		log.Printf("training %s took %v", tag, suite.TrainTime[tag])
	}

	results := suite.EvaluateAll()
	report := eval.FullReport(suite, results)

	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report written to %s\n", *out)
}
