// Command clap-detect scores a (suspicious) pcap capture with a persisted
// detection model — CLAP, Baseline #1 or Kitsune; the tagged model header
// selects the backend automatically. Per-connection adversarial scores,
// verdicts against a threshold, and Top-N localization of the most
// suspicious packets cover the online-detector and forensic deployment
// modes of §3.2. Assembly and scoring run through the backend-agnostic
// pipeline over the sharded parallel engine; scores are bit-identical at
// any worker count.
//
// Usage:
//
//	clap-detect -in suspect.pcap -model clap.model -threshold 0.08 -top 5
//	clap-detect -in suspect.pcap -model clap.model -calibrate benign.pcap -fpr 0.01
//	clap-detect -in suspect.pcap -model kit.model -workers 8 -all
//	clap-detect -in suspect.pcap -model clap.model -json | jq .score
package main

import (
	"flag"
	"log"
	"os"

	"clap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-detect: ")
	var (
		in          = flag.String("in", "", "suspect pcap to score")
		model       = flag.String("model", "clap.model", "trained model path")
		threshold   = flag.Float64("threshold", 0, "adversarial-score threshold (0: report scores only)")
		calibrate   = flag.String("calibrate", "", "benign pcap to derive a threshold from")
		fpr         = flag.Float64("fpr", 0.01, "target false-positive rate for -calibrate")
		top         = flag.Int("top", 5, "Top-N windows to localize per flagged connection")
		all         = flag.Bool("all", false, "print every connection, not only flagged ones")
		jsonOut     = flag.Bool("json", false, "emit JSON lines instead of the text report")
		workers     = flag.Int("workers", 0, "scoring workers (0: all cores)")
		shards      = flag.Int("shards", 0, "assembly shards (0: same as workers)")
		batch       = flag.Int("batch", 0, "inference micro-batch size (0: default 24; 1: unbatched)")
		lockstep    = flag.Int("lockstep", 0, "cross-connection GRU lockstep width (0: off; -1: bench-tuned default)")
		escalateFPR = flag.Float64("escalate-fpr", 0,
			"cascade models: override the persisted escalate-FPR (takes effect at -calibrate)")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("need -in")
	}

	b, err := clap.LoadBackendFile(*model)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	if *escalateFPR > 0 {
		cb, ok := b.(*clap.CascadeBackend)
		if !ok {
			log.Fatalf("-escalate-fpr applies to cascade models; %s is %q", *model, b.Tag())
		}
		if err := cb.SetEscalateFPR(*escalateFPR); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("loaded %s", b.Describe())

	opts := []clap.PipelineOption{
		clap.WithBackend(b),
		clap.WithTopN(*top),
		clap.WithThreshold(*threshold),
	}
	if *workers > 0 {
		opts = append(opts, clap.WithWorkers(*workers))
	}
	if *shards > 0 {
		opts = append(opts, clap.WithShards(*shards))
	}
	if *batch > 0 {
		opts = append(opts, clap.WithBatchSize(*batch))
	}
	if *lockstep != 0 {
		w := *lockstep
		if w < 0 {
			w = clap.DefaultLockstep
		}
		opts = append(opts, clap.WithLockstep(w))
	}
	if *calibrate != "" {
		opts = append(opts, clap.WithThresholdFPR(*fpr, clap.PCAPFile(*calibrate)))
	}
	p, err := clap.NewPipeline(opts...)
	if err != nil {
		log.Fatal(err)
	}

	var sink clap.Sink = clap.NewTextReport(os.Stdout, *all)
	if *jsonOut {
		sink = clap.NewJSONLines(os.Stdout)
	}
	sum, err := p.Run(clap.PCAPFile(*in), sink)
	if err != nil {
		log.Fatal(err)
	}
	if *calibrate != "" {
		log.Printf("calibrated threshold %.6f at FPR <= %.3f over %d benign connections (%d records skipped)",
			sum.Threshold, *fpr, sum.CalibrationConns, sum.CalibrationSkipped)
	}
	// Surface undecodable records: a silently truncated capture would
	// otherwise look like a clean, smaller one.
	log.Printf("scored %d connections (%d records skipped)", len(sum.Results), sum.Skipped)
}
