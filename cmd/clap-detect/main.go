// Command clap-detect scores a (suspicious) pcap capture with a persisted
// CLAP model: per-connection adversarial scores, verdicts against a
// threshold, and Top-N localization of the most suspicious packets — the
// online-detector and forensic deployment modes of §3.2. Assembly and
// scoring run through the sharded parallel engine; scores are bit-identical
// at any worker count.
//
// Usage:
//
//	clap-detect -in suspect.pcap -model clap.model -threshold 0.08 -top 5
//	clap-detect -in suspect.pcap -model clap.model -calibrate benign.pcap -fpr 0.01
//	clap-detect -in suspect.pcap -model clap.model -workers 8 -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"clap/internal/core"
	"clap/internal/engine"
	"clap/internal/flow"
	"clap/internal/metrics"
	"clap/internal/pcapio"
)

func readConns(eng *engine.Engine, path string) []*flow.Connection {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	pkts, _, err := pcapio.ReadPackets(f)
	if err != nil {
		log.Fatalf("reading %s: %v", path, err)
	}
	return eng.Assemble(pkts)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("clap-detect: ")
	var (
		in        = flag.String("in", "", "suspect pcap to score")
		model     = flag.String("model", "clap.model", "trained model path")
		threshold = flag.Float64("threshold", 0, "adversarial-score threshold (0: report scores only)")
		calibrate = flag.String("calibrate", "", "benign pcap to derive a threshold from")
		fpr       = flag.Float64("fpr", 0.01, "target false-positive rate for -calibrate")
		top       = flag.Int("top", 5, "Top-N windows to localize per flagged connection")
		all       = flag.Bool("all", false, "print every connection, not only flagged ones")
		workers   = flag.Int("workers", 0, "scoring workers (0: all cores)")
		shards    = flag.Int("shards", 0, "assembly shards (0: same as workers)")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("need -in")
	}

	eng := engine.New(engine.Options{Workers: *workers, Shards: *shards})

	det, err := core.LoadFile(*model)
	if err != nil {
		log.Fatalf("loading model: %v", err)
	}
	log.Printf("loaded %v", det)

	th := *threshold
	if *calibrate != "" {
		benign := eng.AdversarialScores(det, readConns(eng, *calibrate))
		th = metrics.ThresholdAtFPR(benign, *fpr)
		log.Printf("calibrated threshold %.6f at FPR <= %.3f over %d benign connections",
			th, *fpr, len(benign))
	}

	conns := readConns(eng, *in)
	scores := eng.ScoreAll(det, conns)

	type verdict struct {
		c     *flow.Connection
		score core.Score
	}
	var flagged []verdict
	for i, c := range conns {
		s := scores[i]
		if *all {
			fmt.Printf("%-48s score=%.6f\n", c.Key, s.Adversarial)
		}
		if th > 0 && s.Adversarial >= th {
			flagged = append(flagged, verdict{c, s})
		}
		// Only flagged verdicts need their window errors (for Top-N
		// localization below); release the rest so a large capture does not
		// pin every connection's error series for the whole run.
		scores[i].Errors = nil
	}
	if th <= 0 {
		// Score-only mode: rank everything by the scores already computed
		// (ties broken by capture order so output is deterministic).
		idx := make([]int, len(conns))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return scores[idx[a]].Adversarial > scores[idx[b]].Adversarial
		})
		fmt.Println("top connections by adversarial score:")
		for rank, i := range idx {
			if rank >= 10 {
				break
			}
			fmt.Printf("%2d. %-48s score=%.6f\n", rank+1, conns[i].Key, scores[i].Adversarial)
		}
		return
	}

	fmt.Printf("%d/%d connections flagged at threshold %.6f\n", len(flagged), len(conns), th)
	for _, v := range flagged {
		fmt.Printf("\n%s  score=%.6f peak-window=%d\n", v.c.Key, v.score.Adversarial, v.score.PeakWindow)
		// Rank the window errors the batch pass already computed rather
		// than re-running inference per flagged connection.
		for _, w := range det.LocalizeErrors(v.score.Errors, *top) {
			end := w + det.Cfg.StackLength - 1
			if end >= v.c.Len() {
				end = v.c.Len() - 1
			}
			fmt.Printf("  suspicious window %d: packets %d-%d", w, w, end)
			for p := w; p <= end && p < v.c.Len(); p++ {
				fmt.Printf("\n    [%d] %v", p, v.c.Packets[p])
			}
			fmt.Println()
		}
	}
}
