package clap_test

// End-to-end integration tests of the command-line tools: build each
// binary, then drive the full pcap workflow the README documents —
// generate benign traffic, inject an attack, train a detector, detect and
// localize. Run with -short to skip.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles all five commands once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "clap-tools-*")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"trafficgen", "attack-inject", "clap-train", "clap-detect", "clap-eval", "clap-serve"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				buildDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v: %s", buildErr, buildDir)
	}
	return buildDir
}

func run(t *testing.T, dir string, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCommandWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tools := buildTools(t)
	work := t.TempDir()
	benign := filepath.Join(work, "benign.pcap")
	adv := filepath.Join(work, "adv.pcap")
	truth := filepath.Join(work, "truth.txt")
	model := filepath.Join(work, "clap.model")

	// 1. Generate benign traffic.
	out := run(t, tools, "trafficgen", "-out", benign, "-connections", "120", "-seed", "3")
	if !strings.Contains(out, "120 connections") {
		t.Fatalf("trafficgen output unexpected: %s", out)
	}
	if st, err := os.Stat(benign); err != nil || st.Size() < 1000 {
		t.Fatalf("benign pcap missing or too small: %v", err)
	}

	// 2. Inject an attack into a fraction of a second capture.
	run(t, tools, "trafficgen", "-out", filepath.Join(work, "test.pcap"), "-connections", "40", "-seed", "77")
	out = run(t, tools, "attack-inject",
		"-in", filepath.Join(work, "test.pcap"), "-out", adv,
		"-strategy", "GFW: Injected RST Bad TCP-Checksum/MD5-Option",
		"-fraction", "0.5", "-truth", truth)
	if !strings.Contains(out, "attacked") {
		t.Fatalf("attack-inject output unexpected: %s", out)
	}
	truthData, err := os.ReadFile(truth)
	if err != nil || len(truthData) == 0 {
		t.Fatalf("ground truth file empty: %v", err)
	}

	// 3. Train a small detector.
	out = run(t, tools, "clap-train", "-in", benign, "-model", model,
		"-rnn-epochs", "4", "-ae-epochs", "6", "-quiet")
	if !strings.Contains(out, "saved to") {
		t.Fatalf("clap-train output unexpected: %s", out)
	}

	// 4. Detect with calibration; flagged connections must appear.
	out = run(t, tools, "clap-detect", "-in", adv, "-model", model,
		"-calibrate", benign, "-fpr", "0.05", "-top", "3")
	if !strings.Contains(out, "connections flagged") {
		t.Fatalf("clap-detect output unexpected: %s", out)
	}

	// 5. Score-only mode ranks connections.
	out = run(t, tools, "clap-detect", "-in", adv, "-model", model)
	if !strings.Contains(out, "top connections by adversarial score") {
		t.Fatalf("clap-detect rank mode unexpected: %s", out)
	}
}

// goRun drives a command through `go run` from a fresh clone's module
// root, the way DESIGN.md documents the workflow.
func goRun(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

// scoreLines extracts the "<key> score=<x>" lines from -all output.
func scoreLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "score=") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestClapDetectEndToEnd drives the full clap-detect deployment path via
// `go run`: generate traffic, inject an attack, train, then score the
// suspect pcap — and checks that the per-connection score output is
// byte-identical across engine worker/shard counts.
func TestClapDetectEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	work := t.TempDir()
	benign := filepath.Join(work, "benign.pcap")
	suspect := filepath.Join(work, "suspect.pcap")
	adv := filepath.Join(work, "adv.pcap")
	model := filepath.Join(work, "clap.model")

	goRun(t, "./cmd/trafficgen", "-out", benign, "-connections", "80", "-seed", "11")
	goRun(t, "./cmd/trafficgen", "-out", suspect, "-connections", "30", "-seed", "12")
	goRun(t, "./cmd/attack-inject",
		"-in", suspect, "-out", adv,
		"-strategy", "GFW: Injected RST Bad TCP-Checksum/MD5-Option",
		"-fraction", "0.4")
	goRun(t, "./cmd/clap-train", "-in", benign, "-model", model,
		"-rnn-epochs", "3", "-ae-epochs", "4", "-quiet")

	// Scores out: every connection with -all, one worker, batching off —
	// the true unbatched serial reference.
	serial := goRun(t, "./cmd/clap-detect", "-in", adv, "-model", model,
		"-all", "-workers", "1", "-shards", "1", "-batch", "1")
	serialScores := scoreLines(serial)
	if len(serialScores) < 30 {
		t.Fatalf("expected >= 30 scored connections, got %d:\n%s", len(serialScores), serial)
	}

	// The parallel engine and the batched inference path must reproduce
	// the serial output byte-for-byte at every batch × worker combination.
	for _, wk := range []string{"1", "4", "8"} {
		for _, batch := range []string{"1", "8", "64"} {
			if wk == "1" && batch == "1" {
				continue // the reference run itself
			}
			par := goRun(t, "./cmd/clap-detect", "-in", adv, "-model", model,
				"-all", "-workers", wk, "-shards", wk, "-batch", batch)
			parScores := scoreLines(par)
			if len(parScores) != len(serialScores) {
				t.Fatalf("workers=%s batch=%s: %d scored connections, serial %d",
					wk, batch, len(parScores), len(serialScores))
			}
			for i := range parScores {
				if parScores[i] != serialScores[i] {
					t.Fatalf("workers=%s batch=%s: line %d diverged\nparallel: %s\nserial:   %s",
						wk, batch, i, parScores[i], serialScores[i])
				}
			}
		}
	}

	// Cross-connection lockstep must also reproduce the serial output
	// byte-for-byte: the fleet reorders which connection steps when, never
	// the arithmetic inside any one connection. -lockstep -1 exercises the
	// bench-tuned default width.
	for _, ls := range []string{"1", "6", "24", "-1"} {
		for _, wk := range []string{"1", "4"} {
			par := goRun(t, "./cmd/clap-detect", "-in", adv, "-model", model,
				"-all", "-workers", wk, "-shards", wk, "-lockstep", ls)
			parScores := scoreLines(par)
			if len(parScores) != len(serialScores) {
				t.Fatalf("lockstep=%s workers=%s: %d scored connections, serial %d",
					ls, wk, len(parScores), len(serialScores))
			}
			for i := range parScores {
				if parScores[i] != serialScores[i] {
					t.Fatalf("lockstep=%s workers=%s: line %d diverged\nlockstep: %s\nserial:   %s",
						ls, wk, i, parScores[i], serialScores[i])
				}
			}
		}
	}

	// Calibrated mode still flags connections through the engine.
	out := goRun(t, "./cmd/clap-detect", "-in", adv, "-model", model,
		"-calibrate", benign, "-fpr", "0.05", "-workers", "4")
	if !strings.Contains(out, "connections flagged") {
		t.Fatalf("calibrated run missing flag summary:\n%s", out)
	}

	// The -json sink: one JSON object per connection plus a summary
	// trailer, deterministic across worker counts.
	jsonSerial := goRun(t, "./cmd/clap-detect", "-in", adv, "-model", model,
		"-json", "-workers", "1", "-shards", "1")
	jsonLines := jsonRecords(t, jsonSerial)
	if len(jsonLines) == 0 {
		t.Fatalf("-json emitted no JSON records:\n%s", jsonSerial)
	}
	var trailer struct {
		Summary     bool `json:"summary"`
		Connections int  `json:"connections"`
	}
	if err := json.Unmarshal([]byte(jsonLines[len(jsonLines)-1]), &trailer); err != nil || !trailer.Summary {
		t.Fatalf("missing JSON summary trailer: %v %s", err, jsonLines[len(jsonLines)-1])
	}
	if len(jsonLines) != trailer.Connections+1 || trailer.Connections < 30 {
		t.Fatalf("-json emitted %d records for %d connections (+1 summary)", len(jsonLines), trailer.Connections)
	}
	jsonPar := goRun(t, "./cmd/clap-detect", "-in", adv, "-model", model,
		"-json", "-workers", "8", "-shards", "8")
	parLines := jsonRecords(t, jsonPar)
	if len(parLines) != len(jsonLines) {
		t.Fatalf("-json emitted %d records at workers=8, %d at workers=1", len(parLines), len(jsonLines))
	}
	for i := range jsonLines {
		if parLines[i] != jsonLines[i] {
			t.Fatalf("-json line %d diverged across worker counts:\n%s\n%s", i, parLines[i], jsonLines[i])
		}
	}

	// The JSON scores must be the same numbers the text report printed.
	var first struct {
		Key   string  `json:"key"`
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal([]byte(jsonLines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("score=%.6f", first.Score); !strings.Contains(serialScores[0], want) {
		t.Fatalf("JSON score %s not in text line %q", want, serialScores[0])
	}
}

// jsonRecords splits -json stdout into JSON lines, skipping log output.
func jsonRecords(t *testing.T, out string) []string {
	t.Helper()
	var recs []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "{") {
			if !json.Valid([]byte(l)) {
				t.Fatalf("invalid JSON line: %s", l)
			}
			recs = append(recs, l)
		}
	}
	return recs
}

// TestBackendFlagEndToEnd trains every registered backend through
// clap-train -backend and scores a suspect capture with clap-detect on the
// resulting model — the tagged persistence header must route each model to
// its own decoder.
func TestBackendFlagEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tools := buildTools(t)
	work := t.TempDir()
	benign := filepath.Join(work, "benign.pcap")
	suspect := filepath.Join(work, "suspect.pcap")
	adv := filepath.Join(work, "adv.pcap")

	run(t, tools, "trafficgen", "-out", benign, "-connections", "60", "-seed", "21")
	run(t, tools, "trafficgen", "-out", suspect, "-connections", "20", "-seed", "22")
	run(t, tools, "attack-inject",
		"-in", suspect, "-out", adv,
		"-strategy", "GFW: Injected RST Bad TCP-Checksum/MD5-Option",
		"-fraction", "0.5")

	for _, tag := range []string{"clap", "baseline1", "kitsune"} {
		model := filepath.Join(work, tag+".model")
		out := run(t, tools, "clap-train", "-in", benign, "-model", model,
			"-backend", tag, "-rnn-epochs", "2", "-ae-epochs", "3", "-quiet")
		if !strings.Contains(out, "saved to") {
			t.Fatalf("clap-train -backend %s: %s", tag, out)
		}
		out = run(t, tools, "clap-detect", "-in", adv, "-model", model, "-all")
		scores := scoreLines(out)
		if len(scores) < 20 {
			t.Fatalf("backend %s scored %d connections, want >= 20:\n%s", tag, len(scores), out)
		}
		if !strings.Contains(out, "top connections by adversarial score:") {
			t.Fatalf("backend %s missing ranking:\n%s", tag, out)
		}
	}

	// The deprecated -baseline1 alias still works and produces a
	// baseline1-tagged model.
	model := filepath.Join(work, "b1-alias.model")
	run(t, tools, "clap-train", "-in", benign, "-model", model,
		"-baseline1", "-rnn-epochs", "2", "-ae-epochs", "3", "-quiet")
	out := run(t, tools, "clap-detect", "-in", adv, "-model", model)
	if !strings.Contains(out, "top connections by adversarial score:") {
		t.Fatalf("-baseline1 alias model unusable:\n%s", out)
	}
}

// TestClapServeDaemon boots the clap-serve binary on a bounded soak
// source, drives its ops API over HTTP (health, metrics, flagged,
// threshold, hot reload to a different backend tag), and asserts a clean
// drain on SIGTERM.
func TestClapServeDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tools := buildTools(t)
	work := t.TempDir()
	benign := filepath.Join(work, "benign.pcap")
	clapModel := filepath.Join(work, "clap.model")
	b1Model := filepath.Join(work, "b1.model")

	run(t, tools, "trafficgen", "-out", benign, "-connections", "60", "-seed", "5")
	run(t, tools, "clap-train", "-in", benign, "-model", clapModel,
		"-rnn-epochs", "3", "-ae-epochs", "4", "-quiet")
	run(t, tools, "clap-train", "-in", benign, "-model", b1Model,
		"-backend", "baseline1", "-rnn-epochs", "2", "-ae-epochs", "3", "-quiet")

	cmd := exec.Command(filepath.Join(tools, "clap-serve"),
		"-model", clapModel, "-addr", "127.0.0.1:0",
		"-calibrate", benign, "-fpr", "0.25",
		"-soak", "40", "-soak-attack", "0.4", "-soak-seed", "8")
	var logBuf syncBuffer
	cmd.Stdout = &logBuf
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its ephemeral ops address; wait for it.
	var base string
	deadline := time.Now().Add(60 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its ops API:\n%s", logBuf.String())
		}
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if i := strings.Index(line, "listening on http://"); i >= 0 {
				base = strings.TrimSpace(line[i+len("listening on "):])
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	getBody := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nlog:\n%s", path, err, logBuf.String())
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body)
	}

	if h := getBody("/healthz"); !strings.Contains(h, `"status": "ok"`) {
		t.Fatalf("healthz: %s", h)
	}
	// Wait for the bounded soak to drain through the scorer.
	for !strings.Contains(getBody("/metrics"), "clap_serve_connections_scored_total 40") {
		if time.Now().After(deadline) {
			t.Fatalf("soak never finished:\n%s\n%s", getBody("/metrics"), logBuf.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	if f := getBody("/v1/flagged"); strings.Contains(f, `"total_flagged": 0`) {
		t.Fatalf("nothing flagged at a 25%% FPR threshold over a 40%% attacked soak:\n%s", f)
	}

	// Hot reload to the baseline1 model over HTTP.
	resp, err := http.Post(base+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, b1Model)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"tag": "baseline1"`) {
		t.Fatalf("reload: %s: %s", resp.Status, body)
	}
	if m := getBody("/metrics"); !strings.Contains(m, "clap_serve_reloads_total 1") ||
		!strings.Contains(m, `clap_serve_model_info{tag="baseline1"} 1`) {
		t.Fatalf("metrics missing reload accounting:\n%s", m)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly: %v\n%s", err, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "shutdown complete") {
		t.Fatalf("missing clean shutdown message:\n%s", logBuf.String())
	}
}

// syncBuffer is a goroutine-safe byte buffer for capturing daemon output
// while the test reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}

func TestAttackInjectList(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tools := buildTools(t)
	out := run(t, tools, "attack-inject", "-list")
	for _, want := range []string{"symtcp", "liberate", "geneva", "Injected RST Pure"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
	if n := strings.Count(out, "["); n < 73 {
		t.Errorf("-list shows %d entries, want >= 73", n)
	}
}

func TestClapEvalTinyProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tools := buildTools(t)
	report := filepath.Join(t.TempDir(), "report.txt")
	run(t, tools, "clap-eval", "-profile", "tiny", "-quiet", "-out", report)
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Table 6", "Table 7", "Table 8",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Figure 12",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %s", want)
		}
	}
}
